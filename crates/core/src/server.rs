//! The `hsmd` job server and its blocking client.
//!
//! [`Server`] listens on a TCP socket for line-delimited JSON jobs (see
//! [`crate::protocol`]) and serves each connection on its own thread.
//! All connections share one [`ArtifactCache`] — optionally backed by a
//! persistent store — so two clients sweeping overlapping corpora
//! translate and compile each program once between them. Sweep jobs fan
//! their points out over the sweep engine's worker pool and stream one
//! row back per point, in matrix order, as points complete; a per-job
//! deadline cancels a sweep's remaining points cooperatively.
//!
//! Shutdown is graceful: a `shutdown` job (or [`ServerHandle::stop`])
//! stops the accept loop, and [`Server::run`] returns once every
//! connection thread has drained.
//!
//! [`Client`] is the matching blocking client used by `figures --client`
//! and the integration tests.

use crate::protocol::{
    encode_job, encode_response, parse_job, parse_response, Job, JobRequest, JobResponse,
    ProtocolError, SweepRow,
};
use crate::spec::SweepSpec;
use crate::sweep::{sweep_with, SweepOptions};
use crate::{ArtifactCache, Pipeline, PipelineError};
use scc_sim::SccConfig;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Job-server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Persistent artifact-store directory shared by every connection;
    /// `None` = in-memory cache only.
    pub cache_dir: Option<String>,
    /// Default per-job deadline in milliseconds when a job names none
    /// (0 = no deadline).
    pub default_timeout_ms: u64,
    /// The simulated chip jobs run on.
    pub config: SccConfig,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            cache_dir: None,
            default_timeout_ms: 0,
            config: SccConfig::table_6_1(),
        }
    }
}

/// A handle for stopping a running [`Server`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the server to stop accepting connections and return from
    /// [`Server::run`] once active connections drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// The `hsmd` job server. See the module docs for the protocol and
/// sharing semantics.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    options: ServerOptions,
    cache: Arc<ArtifactCache>,
    stop: Arc<AtomicBool>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds the server to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and opens the shared cache.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-directory failures.
    pub fn bind(addr: &str, options: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache = match &options.cache_dir {
            Some(dir) => ArtifactCache::persistent(dir)?,
            None => ArtifactCache::shared(),
        };
        Ok(Server {
            listener,
            addr,
            options,
            cache,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the actual port after binding to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared artifact cache (to read its stats).
    pub fn cache(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.cache)
    }

    /// A handle that stops this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves connections until a `shutdown` job arrives or the handle
    /// stops the server, then drains active connections and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (refused polls are retried).
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let cache = Arc::clone(&self.cache);
                    let options = self.options.clone();
                    let stop = Arc::clone(&self.stop);
                    workers.push(std::thread::spawn(move || {
                        serve_connection(stream, &cache, &options, &stop);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Writes one response line (errors mean the client hung up; the
/// connection loop notices on its next read).
fn send(writer: &Mutex<TcpStream>, id: u64, response: &JobResponse) {
    let mut line = encode_response(id, response);
    line.push('\n');
    if let Ok(mut stream) = writer.lock() {
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }
}

/// Serves one connection: read a job line, execute, respond, repeat.
fn serve_connection(
    stream: TcpStream,
    cache: &Arc<ArtifactCache>,
    options: &ServerOptions,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let writer = match stream.try_clone() {
        Ok(w) => Mutex::new(w),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed the connection
            Ok(_) if line.ends_with('\n') => {
                let trimmed = line.trim();
                if !trimmed.is_empty() && !handle_line(trimmed, &writer, cache, options, stop) {
                    return;
                }
                line.clear();
            }
            Ok(_) => {} // partial line, keep accumulating
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

/// Executes one job line. Returns false when the connection should end
/// (after a `shutdown` job).
fn handle_line(
    line: &str,
    writer: &Mutex<TcpStream>,
    cache: &Arc<ArtifactCache>,
    options: &ServerOptions,
    stop: &Arc<AtomicBool>,
) -> bool {
    let job = match parse_job(line) {
        Ok(job) => job,
        Err(e) => {
            // The id is unknown for an unparsable line; 0 is the
            // documented "no job" id.
            send(
                writer,
                0,
                &JobResponse::Error {
                    message: e.to_string(),
                },
            );
            return true;
        }
    };
    let timeout_ms = job.timeout_ms.unwrap_or(options.default_timeout_ms);
    match job.request {
        JobRequest::Ping => send(writer, job.id, &JobResponse::Pong),
        JobRequest::Shutdown => {
            send(writer, job.id, &JobResponse::ShuttingDown);
            stop.store(true, Ordering::SeqCst);
            return false;
        }
        JobRequest::Translate {
            name,
            source,
            cores,
        } => {
            let cache = Arc::clone(cache);
            let response = run_with_deadline(timeout_ms, move || {
                Pipeline::new(source)
                    .cores(cores)
                    .cache(cache)
                    .translation()
                    .map(|t| JobResponse::Translated {
                        name,
                        source: t.to_source(),
                    })
            });
            send(writer, job.id, &response);
        }
        JobRequest::Simulate {
            name,
            source,
            cores,
            scenario,
        } => {
            let spec = SweepSpec {
                programs: vec![crate::spec::SpecProgram::inline(name, cores, source)],
                scenarios: vec![scenario],
                workers: 1,
                cache_dir: None,
                predict_first: false,
            };
            run_sweep_job(job.id, &spec, timeout_ms, writer, cache, options, false);
        }
        JobRequest::Sweep { spec } => {
            run_sweep_job(job.id, &spec, timeout_ms, writer, cache, options, true);
        }
        JobRequest::Profile {
            name,
            source,
            cores,
            scenario,
        } => {
            let cache = Arc::clone(cache);
            let config = options.config.clone();
            let response = run_with_deadline(timeout_ms, move || {
                Pipeline::new(source)
                    .cores(cores)
                    .scenario(scenario)
                    .config(config)
                    .cache(cache)
                    .profile()
                    .map(|profile| JobResponse::Profile {
                        name,
                        profile: profile.to_text(),
                    })
            });
            send(writer, job.id, &response);
        }
    }
    true
}

/// Runs `work` on its own thread, converting a missed deadline into an
/// error response (0 = no deadline). The worker keeps running after a
/// timeout — artifacts it produces still land in the shared cache — but
/// its response is dropped.
fn run_with_deadline(
    timeout_ms: u64,
    work: impl FnOnce() -> Result<JobResponse, PipelineError> + Send + 'static,
) -> JobResponse {
    let finish = |result: Result<JobResponse, PipelineError>| match result {
        Ok(response) => response,
        Err(e) => JobResponse::Error {
            message: e.to_string(),
        },
    };
    if timeout_ms == 0 {
        return finish(work());
    }
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(work());
    });
    match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
        Ok(result) => finish(result),
        Err(_) => JobResponse::Error {
            message: format!("job exceeded its {timeout_ms}ms deadline"),
        },
    }
}

/// Executes a sweep job: builds the matrix, attaches the server's shared
/// cache, streams one row per point in matrix order, and closes with
/// `sweep_done`. A deadline cancels remaining points cooperatively —
/// cancelled points stream as rows with a `cancelled` error.
fn run_sweep_job(
    id: u64,
    spec: &SweepSpec,
    timeout_ms: u64,
    writer: &Mutex<TcpStream>,
    cache: &Arc<ArtifactCache>,
    options: &ServerOptions,
    sweep_done: bool,
) {
    // The server's cache (and store) is authoritative for every job;
    // a spec-side `cache_dir` only applies to local runs.
    let matrix = match spec.to_matrix(&options.config) {
        Ok(matrix) => matrix.cache(Arc::clone(cache)),
        Err(e) => {
            send(
                writer,
                id,
                &JobResponse::Error {
                    message: e.to_string(),
                },
            );
            return;
        }
    };
    let deadline = (timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(timeout_ms));
    let cancel = move || deadline.is_some_and(|d| Instant::now() >= d);
    let rows = AtomicU64::new(0);
    let on_row = |_: usize, outcome: &crate::sweep::SweepOutcome| {
        let row = SweepRow::from_outcome(outcome);
        send(writer, id, &JobResponse::Row(row));
        rows.fetch_add(1, Ordering::Relaxed);
    };
    sweep_with(
        &matrix,
        SweepOptions {
            cancel: Some(&cancel),
            on_row: Some(&on_row),
            predict_first: spec.predict_first,
        },
    );
    if sweep_done {
        send(
            writer,
            id,
            &JobResponse::SweepDone {
                rows: rows.load(Ordering::Relaxed),
            },
        );
    }
}

/// A client-side failure: transport, protocol, or a server-reported
/// error.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server sent a line the protocol cannot parse, or an
    /// unexpected response kind.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io: {e}"),
            ClientError::Protocol(e) => write!(f, "client {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A blocking `hsmd` client over one connection.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends one job and returns its id.
    fn submit(&mut self, timeout_ms: Option<u64>, request: JobRequest) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = encode_job(&Job {
            id,
            timeout_ms,
            request,
        });
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Reads the next response line.
    fn receive(&mut self) -> Result<(u64, JobResponse), ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(parse_response(line.trim())?)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.submit(None, JobRequest::Ping)?;
        match self.receive()? {
            (rid, JobResponse::Pong) if rid == id => Ok(()),
            (_, other) => Err(unexpected(&other)),
        }
    }

    /// Translates one program to RCCE C on the server.
    ///
    /// # Errors
    ///
    /// Propagates transport, protocol and server-side failures.
    pub fn translate(
        &mut self,
        name: &str,
        source: &str,
        cores: usize,
        timeout_ms: Option<u64>,
    ) -> Result<String, ClientError> {
        let id = self.submit(
            timeout_ms,
            JobRequest::Translate {
                name: name.to_string(),
                source: source.to_string(),
                cores,
            },
        )?;
        match self.receive()? {
            (rid, JobResponse::Translated { source, .. }) if rid == id => Ok(source),
            (_, JobResponse::Error { message }) => Err(ClientError::Server(message)),
            (_, other) => Err(unexpected(&other)),
        }
    }

    /// Runs a sweep on the server, invoking `on_row` for every streamed
    /// row (in matrix order) and returning all rows once the sweep
    /// completes.
    ///
    /// # Errors
    ///
    /// Propagates transport, protocol and server-side failures.
    pub fn sweep_streaming(
        &mut self,
        spec: &SweepSpec,
        timeout_ms: Option<u64>,
        mut on_row: impl FnMut(&SweepRow),
    ) -> Result<Vec<SweepRow>, ClientError> {
        let id = self.submit(timeout_ms, JobRequest::Sweep { spec: clean(spec) })?;
        let mut rows = Vec::new();
        loop {
            match self.receive()? {
                (rid, JobResponse::Row(row)) if rid == id => {
                    on_row(&row);
                    rows.push(row);
                }
                (rid, JobResponse::SweepDone { rows: n }) if rid == id => {
                    if n as usize != rows.len() {
                        return Err(ClientError::Protocol(protocol_error(format!(
                            "sweep_done reports {n} rows, received {}",
                            rows.len()
                        ))));
                    }
                    return Ok(rows);
                }
                (_, JobResponse::Error { message }) => return Err(ClientError::Server(message)),
                (_, other) => return Err(unexpected(&other)),
            }
        }
    }

    /// [`Client::sweep_streaming`] without a streaming hook.
    ///
    /// # Errors
    ///
    /// Propagates transport, protocol and server-side failures.
    pub fn sweep(
        &mut self,
        spec: &SweepSpec,
        timeout_ms: Option<u64>,
    ) -> Result<Vec<SweepRow>, ClientError> {
        self.sweep_streaming(spec, timeout_ms, |_| {})
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.submit(None, JobRequest::Shutdown)?;
        match self.receive()? {
            (rid, JobResponse::ShuttingDown) if rid == id => Ok(()),
            (_, other) => Err(unexpected(&other)),
        }
    }
}

/// Strips client-local knobs a server must not act on.
fn clean(spec: &SweepSpec) -> SweepSpec {
    let mut spec = spec.clone();
    spec.cache_dir = None;
    spec
}

fn protocol_error(message: String) -> ProtocolError {
    // ProtocolError's fields are public; build one directly.
    ProtocolError { message }
}

fn unexpected(response: &JobResponse) -> ClientError {
    ClientError::Protocol(protocol_error(format!(
        "unexpected `{}` response",
        response.kind()
    )))
}
