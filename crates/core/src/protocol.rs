//! The `hsmd` wire protocol: line-delimited JSON jobs and responses.
//!
//! One connection carries a sequence of jobs. The client writes one
//! [`Job`] per line ([`encode_job`]); the server answers with one or more
//! [`JobResponse`] lines ([`encode_response`]), each tagged with the
//! job's id so responses interleave safely when a client pipelines jobs.
//! A sweep job streams one [`JobResponse::Row`] per sweep point — in
//! matrix order, as points complete — and closes with
//! [`JobResponse::SweepDone`]; every other job produces exactly one
//! response line.
//!
//! The payloads reuse the crate's own JSON type ([`crate::json::Json`]),
//! so the protocol needs no external dependency and both directions are
//! parsed by the same code the manifests are written with.

use crate::experiment::Mode;
use crate::json::{Json, JsonError};
use crate::scenario::Scenario;
use crate::spec::SweepSpec;
use crate::store::fnv1a_bytes;
use crate::sweep::{Prediction, SweepOutcome};
use crate::{ExecModel, OptLevel};
use hsm_exec::RunResult;
use std::fmt;

/// A malformed protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What was wrong with the line.
    pub message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::new(e.to_string())
    }
}

/// One job as submitted by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Client-chosen id echoed on every response to this job.
    pub id: u64,
    /// Per-job deadline in milliseconds; `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// What to do.
    pub request: JobRequest,
}

/// The operations the job server accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// Liveness probe; answered with [`JobResponse::Pong`].
    Ping,
    /// Translate one program to RCCE C and return the emitted source.
    Translate {
        /// Program name (labels responses).
        name: String,
        /// The C source.
        source: String,
        /// Participating core count.
        cores: usize,
    },
    /// Run one program under one scenario and return its row.
    Simulate {
        /// Program name (labels the row).
        name: String,
        /// The C source.
        source: String,
        /// Participating core count.
        cores: usize,
        /// The full scenario (mode × memory model × opt level) — the
        /// single serialized currency for axes on the wire.
        scenario: Scenario,
    },
    /// Run a whole sweep, streaming one row per point.
    Sweep {
        /// The sweep description.
        spec: SweepSpec,
    },
    /// Run one program profiled and return its serialized
    /// [`Profile`](hsm_exec::Profile) (the `hsmprofile` text form). The
    /// profile also lands in the server's artifact cache, so later
    /// predict-first sweeps reuse it.
    Profile {
        /// Program name (labels the response).
        name: String,
        /// The C source.
        source: String,
        /// Participating core count.
        cores: usize,
        /// The full scenario to profile under.
        scenario: Scenario,
    },
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl JobRequest {
    /// The operation's wire name.
    pub fn op(&self) -> &'static str {
        match self {
            JobRequest::Ping => "ping",
            JobRequest::Translate { .. } => "translate",
            JobRequest::Simulate { .. } => "simulate",
            JobRequest::Sweep { .. } => "sweep",
            JobRequest::Profile { .. } => "profile",
            JobRequest::Shutdown => "shutdown",
        }
    }
}

/// One executed sweep point as streamed to a client: the deterministic
/// fields of the run (or its error), never host timings — two clients
/// sweeping the same spec receive byte-identical rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRow {
    /// The point's name (`"{program}/{mode label}"`).
    pub name: String,
    /// The task label (`"baseline"`, `"offchip"`, `"hsm"`, …).
    pub task: String,
    /// Core count the point ran at.
    pub cores: u64,
    /// Memory model label.
    pub exec_model: String,
    /// Optimization level label.
    pub opt_level: String,
    /// The run's exit code (absent on error).
    pub exit_code: Option<i64>,
    /// Simulated cycles between `timer_start`/`timer_stop` (absent on
    /// error).
    pub timed_cycles: Option<u64>,
    /// Total simulated cycles (absent on error).
    pub total_cycles: Option<u64>,
    /// Dynamically retired instructions (absent on error).
    pub instructions: Option<u64>,
    /// FNV-1a hash of the sorted program output (absent on error).
    pub output_fnv: Option<u64>,
    /// The pipeline error, when the point failed.
    pub error: Option<String>,
    /// The analytical prediction a predict-first sweep attached. On a
    /// predicted-only point the run fields above are absent and this is
    /// the row's substance; on a simulated seed/validation point it
    /// rides alongside the measured numbers so clients can compute
    /// ground-truth error.
    pub predicted: Option<Prediction>,
}

impl SweepRow {
    /// The deterministic output fingerprint rows carry.
    pub fn output_hash(result: &RunResult) -> u64 {
        fnv1a_bytes(result.output_sorted().join("\n").as_bytes())
    }

    /// Builds the row of one completed sweep point. The axis labels come
    /// from the scenario the point's task carries — nothing is
    /// re-supplied (or silently defaulted) at the call site. Oracle-check
    /// points run under the pipeline defaults and report them.
    pub fn from_outcome(outcome: &SweepOutcome) -> Self {
        let scenario = outcome.task.scenario().unwrap_or_default();
        let mut row = SweepRow {
            name: outcome.name.clone(),
            task: outcome.task.label().to_string(),
            cores: outcome.cores as u64,
            exec_model: scenario.exec_model.label().to_string(),
            opt_level: scenario.opt_level.label().to_string(),
            exit_code: None,
            timed_cycles: None,
            total_cycles: None,
            instructions: None,
            output_fnv: None,
            error: None,
            predicted: outcome.predicted,
        };
        match &outcome.result {
            Ok(payload) => {
                if let Some(r) = payload.run_result() {
                    row.exit_code = Some(r.exit_code);
                    row.timed_cycles = Some(r.timed_cycles);
                    row.total_cycles = Some(r.total_cycles);
                    row.instructions = Some(r.instructions);
                    row.output_fnv = Some(Self::output_hash(r));
                }
            }
            Err(e) => row.error = Some(e.to_string()),
        }
        row
    }

    /// The row as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("task", Json::Str(self.task.clone())),
            ("cores", Json::UInt(self.cores)),
            ("exec_model", Json::Str(self.exec_model.clone())),
            ("opt_level", Json::Str(self.opt_level.clone())),
        ];
        if let Some(v) = self.exit_code {
            pairs.push(("exit_code", Json::Int(v)));
        }
        if let Some(v) = self.timed_cycles {
            pairs.push(("timed_cycles", Json::UInt(v)));
        }
        if let Some(v) = self.total_cycles {
            pairs.push(("total_cycles", Json::UInt(v)));
        }
        if let Some(v) = self.instructions {
            pairs.push(("instructions", Json::UInt(v)));
        }
        if let Some(v) = self.output_fnv {
            pairs.push(("output_fnv", Json::UInt(v)));
        }
        if let Some(e) = &self.error {
            pairs.push(("error", Json::Str(e.clone())));
        }
        if let Some(p) = &self.predicted {
            pairs.push((
                "predicted",
                Json::obj(vec![
                    ("predicted_cycles", Json::UInt(p.predicted_cycles)),
                    ("seed_cores", Json::UInt(p.seed_cores as u64)),
                ]),
            ));
        }
        Json::obj(pairs)
    }

    /// Parses a row object.
    ///
    /// # Errors
    ///
    /// Rejects objects missing the required identity fields.
    pub fn from_json(doc: &Json) -> Result<Self, ProtocolError> {
        let field_str = |key: &str| match doc.get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            _ => Err(ProtocolError::new(format!("row missing `{key}`"))),
        };
        Ok(SweepRow {
            name: field_str("name")?,
            task: field_str("task")?,
            cores: doc
                .get("cores")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::new("row missing `cores`"))?,
            exec_model: field_str("exec_model")?,
            opt_level: field_str("opt_level")?,
            exit_code: doc.get("exit_code").and_then(Json::as_i64),
            timed_cycles: doc.get("timed_cycles").and_then(Json::as_u64),
            total_cycles: doc.get("total_cycles").and_then(Json::as_u64),
            instructions: doc.get("instructions").and_then(Json::as_u64),
            output_fnv: doc.get("output_fnv").and_then(Json::as_u64),
            error: match doc.get("error") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            },
            predicted: match doc.get("predicted") {
                Some(obj) => {
                    let predicted_cycles = obj
                        .get("predicted_cycles")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| {
                            ProtocolError::new("`predicted` missing `predicted_cycles`")
                        })?;
                    let seed_cores = obj
                        .get("seed_cores")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtocolError::new("`predicted` missing `seed_cores`"))?;
                    Some(Prediction {
                        predicted_cycles,
                        seed_cores: seed_cores as usize,
                    })
                }
                None => None,
            },
        })
    }
}

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResponse {
    /// Answer to [`JobRequest::Ping`].
    Pong,
    /// Answer to [`JobRequest::Translate`]: the emitted RCCE source.
    Translated {
        /// The program's name.
        name: String,
        /// The translated source.
        source: String,
    },
    /// One streamed sweep point (also the single answer to
    /// [`JobRequest::Simulate`]).
    Row(SweepRow),
    /// A sweep finished; `rows` rows were streamed before this.
    SweepDone {
        /// Number of rows streamed.
        rows: u64,
    },
    /// Answer to [`JobRequest::Profile`]: the run's serialized profile.
    Profile {
        /// The program's name.
        name: String,
        /// The profile in its deterministic `hsmprofile` text form
        /// (parse with [`hsm_exec::Profile::from_text`]).
        profile: String,
    },
    /// The job failed (malformed request, pipeline failure, timeout).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Answer to [`JobRequest::Shutdown`], sent before the server exits.
    ShuttingDown,
}

impl JobResponse {
    /// The response's wire kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobResponse::Pong => "pong",
            JobResponse::Translated { .. } => "translated",
            JobResponse::Row(_) => "row",
            JobResponse::SweepDone { .. } => "sweep_done",
            JobResponse::Profile { .. } => "profile",
            JobResponse::Error { .. } => "error",
            JobResponse::ShuttingDown => "shutting_down",
        }
    }
}

/// Encodes a job as one protocol line (no trailing newline).
pub fn encode_job(job: &Job) -> String {
    let mut pairs = vec![("id", Json::UInt(job.id))];
    if let Some(t) = job.timeout_ms {
        pairs.push(("timeout_ms", Json::UInt(t)));
    }
    pairs.push(("op", Json::str(job.request.op())));
    match &job.request {
        JobRequest::Ping | JobRequest::Shutdown => {}
        JobRequest::Translate {
            name,
            source,
            cores,
        } => {
            pairs.push(("name", Json::Str(name.clone())));
            pairs.push(("source", Json::Str(source.clone())));
            pairs.push(("cores", Json::UInt(*cores as u64)));
        }
        JobRequest::Simulate {
            name,
            source,
            cores,
            scenario,
        } => {
            pairs.push(("name", Json::Str(name.clone())));
            pairs.push(("source", Json::Str(source.clone())));
            pairs.push(("cores", Json::UInt(*cores as u64)));
            pairs.push(("scenario", scenario.to_json()));
        }
        JobRequest::Sweep { spec } => {
            pairs.push(("spec", spec.to_json()));
        }
        JobRequest::Profile {
            name,
            source,
            cores,
            scenario,
        } => {
            pairs.push(("name", Json::Str(name.clone())));
            pairs.push(("source", Json::Str(source.clone())));
            pairs.push(("cores", Json::UInt(*cores as u64)));
            pairs.push(("scenario", scenario.to_json()));
        }
    }
    Json::obj(pairs).render_compact()
}

/// Parses one job line.
///
/// # Errors
///
/// Rejects malformed JSON, unknown ops and missing fields.
pub fn parse_job(line: &str) -> Result<Job, ProtocolError> {
    let doc = Json::parse(line)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::new("job missing `id`"))?;
    let timeout_ms = doc.get("timeout_ms").and_then(Json::as_u64);
    let op = match doc.get("op") {
        Some(Json::Str(s)) => s.as_str(),
        _ => return Err(ProtocolError::new("job missing `op`")),
    };
    let field_str = |key: &str| match doc.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(ProtocolError::new(format!("`{op}` job missing `{key}`"))),
    };
    let field_cores = || {
        doc.get("cores")
            .and_then(Json::as_u64)
            .filter(|&n| n > 0)
            .map(|n| n as usize)
            .ok_or_else(|| ProtocolError::new(format!("`{op}` job needs a positive `cores`")))
    };
    let request = match op {
        "ping" => JobRequest::Ping,
        "shutdown" => JobRequest::Shutdown,
        "translate" => JobRequest::Translate {
            name: field_str("name")?,
            source: field_str("source")?,
            cores: field_cores()?,
        },
        "simulate" => {
            let scenario = match doc.get("scenario") {
                Some(nested) => {
                    Scenario::from_json(nested).map_err(|e| ProtocolError::new(e.to_string()))?
                }
                // Legacy flat form: a required `mode` label plus optional
                // `exec_model`/`opt_level` sibling fields.
                None => {
                    let mode_label = field_str("mode")?;
                    let mode = Mode::parse(&mode_label).ok_or_else(|| {
                        ProtocolError::new(format!("unknown mode `{mode_label}`"))
                    })?;
                    let exec_model = match doc.get("exec_model") {
                        None => ExecModel::Coherent,
                        Some(Json::Str(s)) => ExecModel::parse(s).ok_or_else(|| {
                            ProtocolError::new(format!("unknown exec model `{s}`"))
                        })?,
                        Some(_) => return Err(ProtocolError::new("`exec_model` must be a string")),
                    };
                    let opt_level = match doc.get("opt_level") {
                        None => OptLevel::O0,
                        Some(Json::Str(s)) => OptLevel::parse(s).ok_or_else(|| {
                            ProtocolError::new(format!("unknown opt level `{s}`"))
                        })?,
                        Some(_) => return Err(ProtocolError::new("`opt_level` must be a string")),
                    };
                    Scenario::new(mode)
                        .exec_model(exec_model)
                        .opt_level(opt_level)
                }
            };
            JobRequest::Simulate {
                name: field_str("name")?,
                source: field_str("source")?,
                cores: field_cores()?,
                scenario,
            }
        }
        "sweep" => {
            let spec = doc
                .get("spec")
                .ok_or_else(|| ProtocolError::new("`sweep` job missing `spec`"))?;
            JobRequest::Sweep {
                spec: SweepSpec::from_json(spec).map_err(|e| ProtocolError::new(e.to_string()))?,
            }
        }
        "profile" => {
            let scenario = match doc.get("scenario") {
                Some(nested) => {
                    Scenario::from_json(nested).map_err(|e| ProtocolError::new(e.to_string()))?
                }
                None => Scenario::default(),
            };
            JobRequest::Profile {
                name: field_str("name")?,
                source: field_str("source")?,
                cores: field_cores()?,
                scenario,
            }
        }
        other => return Err(ProtocolError::new(format!("unknown op `{other}`"))),
    };
    Ok(Job {
        id,
        timeout_ms,
        request,
    })
}

/// Encodes a response to job `id` as one protocol line (no trailing
/// newline).
pub fn encode_response(id: u64, response: &JobResponse) -> String {
    let mut pairs = vec![("id", Json::UInt(id)), ("kind", Json::str(response.kind()))];
    match response {
        JobResponse::Pong | JobResponse::ShuttingDown => {}
        JobResponse::Translated { name, source } => {
            pairs.push(("name", Json::Str(name.clone())));
            pairs.push(("source", Json::Str(source.clone())));
        }
        JobResponse::Row(row) => pairs.push(("row", row.to_json())),
        JobResponse::SweepDone { rows } => pairs.push(("rows", Json::UInt(*rows))),
        JobResponse::Profile { name, profile } => {
            pairs.push(("name", Json::Str(name.clone())));
            pairs.push(("profile", Json::Str(profile.clone())));
        }
        JobResponse::Error { message } => pairs.push(("message", Json::Str(message.clone()))),
    }
    Json::obj(pairs).render_compact()
}

/// Parses one response line into the job id it answers and the response.
///
/// # Errors
///
/// Rejects malformed JSON, unknown kinds and missing fields.
pub fn parse_response(line: &str) -> Result<(u64, JobResponse), ProtocolError> {
    let doc = Json::parse(line)?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::new("response missing `id`"))?;
    let kind = match doc.get("kind") {
        Some(Json::Str(s)) => s.as_str(),
        _ => return Err(ProtocolError::new("response missing `kind`")),
    };
    let field_str = |key: &str| match doc.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(ProtocolError::new(format!(
            "`{kind}` response missing `{key}`"
        ))),
    };
    let response = match kind {
        "pong" => JobResponse::Pong,
        "shutting_down" => JobResponse::ShuttingDown,
        "translated" => JobResponse::Translated {
            name: field_str("name")?,
            source: field_str("source")?,
        },
        "row" => {
            let row = doc
                .get("row")
                .ok_or_else(|| ProtocolError::new("`row` response missing `row`"))?;
            JobResponse::Row(SweepRow::from_json(row)?)
        }
        "sweep_done" => JobResponse::SweepDone {
            rows: doc
                .get("rows")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::new("`sweep_done` response missing `rows`"))?,
        },
        "profile" => JobResponse::Profile {
            name: field_str("name")?,
            profile: field_str("profile")?,
        },
        "error" => JobResponse::Error {
            message: field_str("message")?,
        },
        other => return Err(ProtocolError::new(format!("unknown kind `{other}`"))),
    };
    Ok((id, response))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecProgram;

    #[test]
    fn jobs_round_trip_through_the_wire_form() {
        let jobs = vec![
            Job {
                id: 1,
                timeout_ms: None,
                request: JobRequest::Ping,
            },
            Job {
                id: 2,
                timeout_ms: Some(5_000),
                request: JobRequest::Translate {
                    name: "tiny".to_string(),
                    source: "int main() { return 0; }".to_string(),
                    cores: 4,
                },
            },
            Job {
                id: 3,
                timeout_ms: Some(60_000),
                request: JobRequest::Sweep {
                    spec: SweepSpec {
                        programs: vec![SpecProgram::corpus("example_4_1", 3)],
                        ..SweepSpec::default()
                    },
                },
            },
            Job {
                id: 4,
                timeout_ms: None,
                request: JobRequest::Simulate {
                    name: "tiny".to_string(),
                    source: "int main() { return 1; }".to_string(),
                    cores: 2,
                    scenario: Scenario::new(Mode::RcceHsm).opt_level(OptLevel::O1),
                },
            },
            Job {
                id: 6,
                timeout_ms: None,
                request: JobRequest::Simulate {
                    name: "task".to_string(),
                    source: "int main() { task_wait_all(); return 0; }".to_string(),
                    cores: 4,
                    scenario: Scenario::new(Mode::TaskDataflow)
                        .exec_model(ExecModel::NonCoherentWriteBack),
                },
            },
            Job {
                id: 7,
                timeout_ms: Some(10_000),
                request: JobRequest::Profile {
                    name: "dot".to_string(),
                    source: "int main() { return 0; }".to_string(),
                    cores: 2,
                    scenario: Scenario::new(Mode::RcceHsm),
                },
            },
            Job {
                id: 5,
                timeout_ms: None,
                request: JobRequest::Shutdown,
            },
        ];
        for job in jobs {
            let line = encode_job(&job);
            assert!(!line.contains('\n'), "one line per job: {line}");
            let back = parse_job(&line).expect("parses");
            assert_eq!(job, back);
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let row = SweepRow {
            name: "example_4_1/hsm".to_string(),
            task: "hsm".to_string(),
            cores: 3,
            exec_model: "coherent".to_string(),
            opt_level: "O0".to_string(),
            exit_code: Some(24),
            timed_cycles: Some(123_456),
            total_cycles: Some(234_567),
            instructions: Some(99_000),
            output_fnv: Some(0xdead_beef),
            error: None,
            predicted: None,
        };
        let predicted_row = SweepRow {
            name: "example_4_1@16/hsm".to_string(),
            task: "hsm".to_string(),
            cores: 16,
            exec_model: "coherent".to_string(),
            opt_level: "O0".to_string(),
            exit_code: None,
            timed_cycles: None,
            total_cycles: None,
            instructions: None,
            output_fnv: None,
            error: None,
            predicted: Some(Prediction {
                predicted_cycles: 654_321,
                seed_cores: 2,
            }),
        };
        let responses = vec![
            JobResponse::Pong,
            JobResponse::Translated {
                name: "tiny".to_string(),
                source: "RCCE_APP(int argc, char **argv) { return 0; }".to_string(),
            },
            JobResponse::Row(row),
            JobResponse::Row(predicted_row),
            JobResponse::SweepDone { rows: 4 },
            JobResponse::Profile {
                name: "dot".to_string(),
                profile: "hsmprofile 1\nrun 1 10 10 5 0\n".to_string(),
            },
            JobResponse::Error {
                message: "parse stage: unexpected token".to_string(),
            },
            JobResponse::ShuttingDown,
        ];
        for response in responses {
            let line = encode_response(9, &response);
            assert!(!line.contains('\n'), "one line per response: {line}");
            let (id, back) = parse_response(&line).expect("parses");
            assert_eq!(id, 9);
            assert_eq!(response, back);
        }
    }

    #[test]
    fn failed_row_carries_the_error_instead_of_numbers() {
        let row = SweepRow {
            name: "bad/hsm".to_string(),
            task: "hsm".to_string(),
            cores: 2,
            exec_model: "coherent".to_string(),
            opt_level: "O0".to_string(),
            exit_code: None,
            timed_cycles: None,
            total_cycles: None,
            instructions: None,
            output_fnv: None,
            error: Some("parse stage: unexpected `{`".to_string()),
            predicted: None,
        };
        let line = encode_response(1, &JobResponse::Row(row.clone()));
        let (_, back) = parse_response(&line).expect("parses");
        assert_eq!(back, JobResponse::Row(row));
    }

    #[test]
    fn legacy_flat_simulate_jobs_still_parse() {
        let line = r#"{"id": 7, "op": "simulate", "name": "tiny",
            "source": "int main() { return 1; }", "cores": 2,
            "mode": "hsm", "opt_level": "O2"}"#;
        let job = parse_job(line).expect("parses");
        assert_eq!(
            job.request,
            JobRequest::Simulate {
                name: "tiny".to_string(),
                source: "int main() { return 1; }".to_string(),
                cores: 2,
                scenario: Scenario::new(Mode::RcceHsm).opt_level(OptLevel::O2),
            }
        );
        // But the encoder only ever emits the nested scenario object —
        // re-encoding a legacy job normalizes it, and it still parses.
        let encoded = encode_job(&job);
        assert!(
            encoded.contains("\"scenario\":{\"mode\":\"hsm\""),
            "{encoded}"
        );
        assert_eq!(parse_job(&encoded).expect("reparses"), job);
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(parse_job("not json").is_err());
        let err = parse_job(r#"{"id": 1, "op": "warp"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown op `warp`"), "{err}");
        let err = parse_job(r#"{"op": "ping"}"#).unwrap_err();
        assert!(err.to_string().contains("missing `id`"), "{err}");
        let err = parse_response(r#"{"id": 1, "kind": "???"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");
    }
}
