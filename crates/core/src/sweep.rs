//! The parallel experiment sweep engine.
//!
//! [`sweep`] executes a benchmark × mode × core-count matrix
//! ([`SweepMatrix`]) as a work-stealing fan-out over std threads: workers
//! pull points off a shared queue, each point runs one deterministic
//! single-threaded simulation through an artifact-reuse
//! [`Pipeline`] session, and every session shares one
//! [`ArtifactCache`] so the baseline, off-chip and HSM runs of a
//! benchmark parse, analyze and partition its source exactly once.
//!
//! The report records, per point, the payload plus the host wall time,
//! and globally the cache hit/miss counters — both feed the versioned
//! JSON run manifest `figures --json` writes. Results are bit-identical
//! for any worker count: the simulations are pure functions of their
//! inputs, and the cache's pending-slot discipline keeps even the
//! hit/miss counters schedule-independent.

use crate::cache::{source_hash, ArtifactCache, CacheStats};
use crate::metrics::PipelineMetrics;
use crate::scenario::{Mode, Scenario};
use crate::{Pipeline, PipelineError, Policy, SharingCheck};
use hsm_exec::{ExecModel, RunResult};
use hsm_predict::{CacheModel, CyclePredictor, FitOptions, WorkScaling};
use hsm_workloads::Bench;
use scc_sim::SccConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What one sweep point executes. Run tasks carry their full
/// [`Scenario`] — mode, memory model and opt level travel together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepTask {
    /// A plain run of the given scenario.
    Run(Scenario),
    /// A run of the given scenario with per-stage pipeline metering.
    RunMetered(Scenario),
    /// The pthread-mode sharing-soundness oracle check.
    CheckSharing,
    /// The RCCE-mode oracle check of the translated program.
    CheckSharingRcce,
}

impl SweepTask {
    /// A stable label for manifests and progress output.
    pub fn label(self) -> &'static str {
        match self {
            SweepTask::Run(s) | SweepTask::RunMetered(s) => s.label(),
            SweepTask::CheckSharing => "check_sharing",
            SweepTask::CheckSharingRcce => "check_sharing_rcce",
        }
    }

    /// The scenario a run task carries (oracle checks run with the
    /// pipeline defaults and have none).
    pub fn scenario(self) -> Option<Scenario> {
        match self {
            SweepTask::Run(s) | SweepTask::RunMetered(s) => Some(s),
            SweepTask::CheckSharing | SweepTask::CheckSharingRcce => None,
        }
    }

    /// The placement policy the task's mode implies.
    fn default_policy(self) -> Policy {
        match self.scenario() {
            Some(s) => s.mode.policy(),
            None => Policy::SizeAscending,
        }
    }
}

/// One point of the sweep matrix.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Unique name the report is keyed by.
    pub name: String,
    /// The program source (shared, not cloned, across points).
    pub src: Arc<str>,
    /// What to execute (a run task carries its [`Scenario`]: mode,
    /// memory model and opt level).
    pub task: SweepTask,
    /// Participating core count.
    pub cores: usize,
    /// Placement policy (defaults from the task's mode).
    pub policy: Policy,
    /// Extra cache-hot re-runs to time after the point completes
    /// (0 = none). Feeds the manifest's `host_timing` block.
    pub timing_runs: usize,
}

/// A benchmark × mode × core-count matrix plus execution knobs.
#[derive(Debug, Clone)]
pub struct SweepMatrix {
    /// The points to execute, in report order.
    pub points: Vec<SweepPoint>,
    /// The simulated chip every point runs on.
    pub config: SccConfig,
    /// Worker threads (0 = one per available host core).
    pub workers: usize,
    /// Shared artifact cache (a fresh one per sweep when `None`).
    pub cache: Option<Arc<ArtifactCache>>,
}

impl SweepMatrix {
    /// An empty matrix over `config`.
    pub fn new(config: SccConfig) -> Self {
        SweepMatrix {
            points: Vec::new(),
            config,
            workers: 0,
            cache: None,
        }
    }

    /// Sets the worker-thread count (0 = one per available host core).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a shared cache instead of a per-sweep private one.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Appends a point with the task's default policy.
    #[must_use]
    pub fn point(
        self,
        name: impl Into<String>,
        src: Arc<str>,
        task: SweepTask,
        cores: usize,
    ) -> Self {
        self.timed_point(name, src, task, cores, 0)
    }

    /// Appends a point that additionally times `timing_runs` cache-hot
    /// re-runs.
    #[must_use]
    pub fn timed_point(
        mut self,
        name: impl Into<String>,
        src: Arc<str>,
        task: SweepTask,
        cores: usize,
        timing_runs: usize,
    ) -> Self {
        self.points.push(SweepPoint {
            name: name.into(),
            src,
            task,
            cores,
            policy: task.default_policy(),
            timing_runs,
        });
        self
    }

    /// Replaces the scenario of the most recently appended point (and
    /// re-derives its default policy). No-op on an empty matrix or an
    /// oracle-check point.
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        if let Some(point) = self.points.last_mut() {
            point.task = match point.task {
                SweepTask::Run(_) => SweepTask::Run(scenario),
                SweepTask::RunMetered(_) => SweepTask::RunMetered(scenario),
                other => other,
            };
            point.policy = point.task.default_policy();
        }
        self
    }

    /// The full benchmark × mode grid at one core count, named
    /// `"{bench}/{mode label}"`.
    pub fn benchmarks(benches: &[Bench], modes: &[Mode], units: usize, config: SccConfig) -> Self {
        let mut matrix = SweepMatrix::new(config);
        for &bench in benches {
            let params = bench.default_params(units);
            let src: Arc<str> = hsm_workloads::source(bench, &params).into();
            for &mode in modes {
                let task = SweepTask::Run(Scenario::new(mode));
                matrix = matrix.point(
                    format!("{}/{}", bench.name(), task.label()),
                    Arc::clone(&src),
                    task,
                    params.threads,
                );
            }
        }
        matrix
    }

    /// One benchmark across several core counts in the given modes, named
    /// `"{bench}@{cores}/{mode label}"`.
    pub fn core_scaling(
        bench: Bench,
        modes: &[Mode],
        core_counts: &[usize],
        config: SccConfig,
    ) -> Self {
        let mut matrix = SweepMatrix::new(config);
        for &cores in core_counts {
            let params = bench.default_params(cores);
            let src: Arc<str> = hsm_workloads::source(bench, &params).into();
            for &mode in modes {
                let task = SweepTask::Run(Scenario::new(mode));
                matrix = matrix.point(
                    format!("{}@{}/{}", bench.name(), cores, task.label()),
                    Arc::clone(&src),
                    task,
                    cores,
                );
            }
        }
        matrix
    }
}

/// An analytical cycle prediction for one sweep point, fitted from a
/// profiled seed run of the same (program, scenario) group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted makespan cycles at the point's core count.
    pub predicted_cycles: u64,
    /// The core count of the profiled seed run the model was fitted at.
    pub seed_cores: usize,
}

/// What a completed point produced.
#[derive(Debug)]
pub enum SweepPayload {
    /// A run result, with stage metrics when the task was metered.
    Run(RunResult, Option<PipelineMetrics>),
    /// An oracle check.
    Sharing(Box<SharingCheck>),
    /// A predict-first sweep satisfied this point analytically instead
    /// of simulating it.
    Predicted(Prediction),
}

impl SweepPayload {
    /// The run result, for `Run`/`RunMetered` points.
    pub fn run_result(&self) -> Option<&RunResult> {
        match self {
            SweepPayload::Run(r, _) => Some(r),
            SweepPayload::Sharing(_) | SweepPayload::Predicted(_) => None,
        }
    }
}

/// Distribution of the cache-hot re-run timings of one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Number of timed re-runs.
    pub runs: usize,
    /// Median wall time in nanoseconds.
    pub median_nanos: u128,
    /// Fastest re-run in nanoseconds.
    pub min_nanos: u128,
    /// Slowest re-run in nanoseconds.
    pub max_nanos: u128,
}

/// One executed point of a sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The point's name.
    pub name: String,
    /// The task that ran.
    pub task: SweepTask,
    /// The core count it ran at.
    pub cores: usize,
    /// The payload, or the pipeline failure (with its failing stage).
    pub result: Result<SweepPayload, PipelineError>,
    /// Host wall time of this point, in nanoseconds.
    pub host_wall_nanos: u128,
    /// Cache-hot re-run timing, when the point requested it.
    pub timing: Option<TimingStats>,
    /// The analytical prediction a predict-first sweep attached: set on
    /// predicted points (mirroring the payload) and on the simulated
    /// seed and validation points of each group, so ground-truth error
    /// can be computed. `None` in plain sweeps.
    pub predicted: Option<Prediction>,
}

impl SweepOutcome {
    /// Consumes the outcome into its plain run result (oracle payloads
    /// yield the checked program's run).
    ///
    /// # Errors
    ///
    /// Propagates the point's pipeline failure; a predicted-only point
    /// has no run and yields [`PipelineError::PredictedOnly`].
    pub fn into_run(self) -> Result<RunResult, PipelineError> {
        self.result.and_then(|payload| match payload {
            SweepPayload::Run(r, _) => Ok(r),
            SweepPayload::Sharing(check) => Ok(check.result),
            SweepPayload::Predicted(_) => Err(PipelineError::PredictedOnly),
        })
    }
}

/// The result of one [`sweep`] call.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-point outcomes, in matrix order.
    pub outcomes: Vec<SweepOutcome>,
    /// Cache hit/miss counters accumulated across the whole sweep.
    pub cache: CacheStats,
    /// Worker threads actually used.
    pub workers: usize,
    /// Host wall time of the whole sweep, in nanoseconds.
    pub host_wall_nanos: u128,
}

impl SweepReport {
    /// Finds an outcome by point name.
    pub fn outcome(&self, name: &str) -> Option<&SweepOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// True when every point completed without a pipeline failure.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }
}

/// Resolves a worker-count request against the host.
fn effective_workers(requested: usize, points: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    workers.clamp(1, points.max(1))
}

/// The configured session for one point.
fn point_pipeline(point: &SweepPoint, config: &SccConfig, cache: &Arc<ArtifactCache>) -> Pipeline {
    let mut pipeline = Pipeline::new(Arc::clone(&point.src)).cores(point.cores);
    if let Some(scenario) = point.task.scenario() {
        pipeline = pipeline.scenario(scenario);
    }
    pipeline
        .policy(point.policy)
        .config(config.clone())
        .cache(Arc::clone(cache))
}

/// Executes one point through an artifact-reuse session.
fn run_point(point: &SweepPoint, config: &SccConfig, cache: &Arc<ArtifactCache>) -> SweepOutcome {
    let started = Instant::now();
    let pipeline = point_pipeline(point, config, cache);
    let result = match point.task {
        SweepTask::Run(_) => pipeline.run_scenario().map(|r| SweepPayload::Run(r, None)),
        SweepTask::RunMetered(_) => pipeline
            .run_scenario_metered()
            .map(|(r, m)| SweepPayload::Run(r, Some(m))),
        SweepTask::CheckSharing => pipeline
            .check_sharing()
            .map(|c| SweepPayload::Sharing(Box::new(c))),
        SweepTask::CheckSharingRcce => pipeline
            .check_sharing_rcce()
            .map(|c| SweepPayload::Sharing(Box::new(c))),
    };
    let timing = if point.timing_runs > 0 && result.is_ok() {
        Some(time_reruns(&pipeline, point.task, point.timing_runs))
    } else {
        None
    };
    SweepOutcome {
        name: point.name.clone(),
        task: point.task,
        cores: point.cores,
        result,
        host_wall_nanos: started.elapsed().as_nanos(),
        timing,
        predicted: None,
    }
}

/// Executes one point through the profiled run path, returning both the
/// outcome and the run [`Profile`](hsm_exec::Profile) (deposited in the
/// cache's `profile` shelf as a side effect).
fn run_point_profiled(
    point: &SweepPoint,
    config: &SccConfig,
    cache: &Arc<ArtifactCache>,
) -> (SweepOutcome, Option<hsm_exec::Profile>) {
    let started = Instant::now();
    let pipeline = point_pipeline(point, config, cache);
    let (result, profile) = match pipeline.run_profiled() {
        Ok((r, profile)) => (Ok(SweepPayload::Run(r, None)), Some(profile)),
        Err(e) => (Err(e), None),
    };
    let outcome = SweepOutcome {
        name: point.name.clone(),
        task: point.task,
        cores: point.cores,
        result,
        host_wall_nanos: started.elapsed().as_nanos(),
        timing: None,
        predicted: None,
    };
    (outcome, profile)
}

/// Times `runs` cache-hot repeats of the point's run path.
fn time_reruns(pipeline: &Pipeline, task: SweepTask, runs: usize) -> TimingStats {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let started = Instant::now();
        let result = match task {
            SweepTask::Run(_) | SweepTask::RunMetered(_) => pipeline.run_scenario(),
            SweepTask::CheckSharing => pipeline.check_sharing().map(|c| c.result),
            SweepTask::CheckSharingRcce => pipeline.check_sharing_rcce().map(|c| c.result),
        };
        let _ = std::hint::black_box(result);
        samples.push(started.elapsed().as_nanos());
    }
    samples.sort_unstable();
    TimingStats {
        runs,
        median_nanos: samples[runs / 2],
        min_nanos: samples[0],
        max_nanos: samples[runs - 1],
    }
}

/// Controls and callbacks for [`sweep_with`]. The plain [`sweep`] is
/// `sweep_with(matrix, SweepOptions::default())`.
#[derive(Clone, Copy, Default)]
pub struct SweepOptions<'a> {
    /// Cooperative cancellation, checked before each point starts (a
    /// running simulation is never interrupted mid-flight). Once it
    /// returns true, every remaining point completes immediately with
    /// [`PipelineError::Cancelled`] — the report still has one outcome
    /// per point, in order. The `hsmd` server uses this to enforce
    /// per-job deadlines.
    pub cancel: Option<&'a (dyn Fn() -> bool + Sync)>,
    /// Streaming hook: called exactly once per point with its index and
    /// outcome, in matrix order, as soon as the point *and every earlier
    /// one* have completed (a reorder buffer hides out-of-order worker
    /// completion). Calls are serialized; the `hsmd` server streams
    /// manifest rows to its client from here.
    pub on_row: Option<RowHook<'a>>,
    /// Predict-first triage: instead of simulating every point, group
    /// the plain run points by (source, scenario, policy), simulate only
    /// each group's smallest-core **seed** (profiled, so its
    /// [`Profile`](hsm_exec::Profile) lands in the cache) and its
    /// farthest-extrapolated **validation** point (ground truth for the
    /// error bound), and satisfy the rest analytically with a fitted
    /// [`CyclePredictor`]. Groups too small to save work (fewer than
    /// three points) and metered/oracle/timed points simulate normally,
    /// so a predict-first sweep runs strictly fewer simulations than the
    /// full matrix whenever any group has three or more points. See
    /// [`SweepPayload::Predicted`] and [`SweepOutcome::predicted`].
    pub predict_first: bool,
}

/// The row-streaming callback type of [`SweepOptions::on_row`]: point
/// index plus the finished outcome, invoked in matrix order.
pub type RowHook<'a> = &'a (dyn Fn(usize, &SweepOutcome) + Sync);

impl std::fmt::Debug for SweepOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("cancel", &self.cancel.is_some())
            .field("on_row", &self.on_row.is_some())
            .field("predict_first", &self.predict_first)
            .finish()
    }
}

/// Executes every point of `matrix` across its worker threads and
/// collects the outcomes in matrix order.
///
/// Workers pull points off a shared queue (the idle ones steal whatever
/// work remains, so a slow point never serializes the rest), and all of
/// them feed one [`ArtifactCache`]. Each simulated run itself stays
/// single-threaded and deterministic; for a fixed matrix the report's
/// payloads and cache counters are identical for every worker count —
/// only the host wall times vary.
pub fn sweep(matrix: &SweepMatrix) -> SweepReport {
    sweep_with(matrix, SweepOptions::default())
}

/// [`sweep`] with cooperative cancellation, ordered row streaming and
/// predict-first triage — the engine behind the `hsmd` job server. See
/// [`SweepOptions`].
pub fn sweep_with(matrix: &SweepMatrix, opts: SweepOptions<'_>) -> SweepReport {
    if opts.predict_first {
        return sweep_predict_first(matrix, opts);
    }
    let cache = matrix.cache.clone().unwrap_or_else(ArtifactCache::shared);
    let total = matrix.points.len();
    let workers = effective_workers(matrix.workers, total);
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    // Reorder buffer cursor: index of the next outcome to hand to
    // `on_row`. Workers advance it under the lock after filling a slot.
    let next_emit = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<SweepOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let point = &matrix.points[i];
                let outcome = if opts.cancel.is_some_and(|cancelled| cancelled()) {
                    SweepOutcome {
                        name: point.name.clone(),
                        task: point.task,
                        cores: point.cores,
                        result: Err(PipelineError::Cancelled),
                        host_wall_nanos: 0,
                        timing: None,
                        predicted: None,
                    }
                } else {
                    run_point(point, &matrix.config, &cache)
                };
                *slots[i].lock().expect("result slot") = Some(outcome);
                if let Some(on_row) = opts.on_row {
                    let mut cursor = next_emit.lock().expect("emit cursor");
                    while *cursor < total {
                        let slot = slots[*cursor].lock().expect("result slot");
                        match slot.as_ref() {
                            Some(done) => on_row(*cursor, done),
                            None => break,
                        }
                        *cursor += 1;
                    }
                }
            });
        }
    });
    let outcomes = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every point executed")
        })
        .collect();
    SweepReport {
        outcomes,
        cache: cache.stats(),
        workers,
        host_wall_nanos: started.elapsed().as_nanos(),
    }
}

/// Maps a run scenario onto the predictor's fit options: the mode picks
/// the work-scaling discipline (and the RCCE library's fixed
/// init/finalize overhead), the memory model picks the cache treatment.
pub fn fit_options_for(scenario: Scenario) -> FitOptions {
    let scaling = match scenario.mode {
        Mode::PthreadBaseline => WorkScaling::Serialized,
        Mode::TaskDataflow => WorkScaling::PartitionedWithMaster,
        Mode::RcceOffChip | Mode::RcceHsm => WorkScaling::Partitioned,
    };
    let cache = match scenario.exec_model {
        ExecModel::SeqCstReference => CacheModel::Flat,
        _ => CacheModel::Hierarchy,
    };
    let fixed_cycles = match scenario.mode {
        Mode::RcceOffChip | Mode::RcceHsm => {
            hsm_exec::syscall_cost::RCCE_INIT + hsm_exec::syscall_cost::RCCE_FINALIZE
        }
        _ => 0,
    };
    FitOptions {
        scaling,
        cache,
        fixed_cycles,
    }
}

/// A point's prediction-group key: same program, same scenario, same
/// policy — only the core count varies along the predicted surface.
type GroupKey = (u64, Scenario, Policy);

/// The predict-first engine behind [`SweepOptions::predict_first`].
///
/// Runs serially (the whole point is to do *less* work than the
/// fan-out): per group, one profiled seed simulation, one ground-truth
/// validation simulation at the farthest-extrapolated point, and
/// constant-time analytical predictions for everything else. Outcomes
/// land in matrix order and `on_row` fires once per point, in order,
/// after the sweep completes.
fn sweep_predict_first(matrix: &SweepMatrix, opts: SweepOptions<'_>) -> SweepReport {
    let cache = matrix.cache.clone().unwrap_or_else(ArtifactCache::shared);
    let total = matrix.points.len();
    let started = Instant::now();
    let is_cancelled = || opts.cancel.is_some_and(|cancelled| cancelled());
    let cancel_outcome = |point: &SweepPoint| SweepOutcome {
        name: point.name.clone(),
        task: point.task,
        cores: point.cores,
        result: Err(PipelineError::Cancelled),
        host_wall_nanos: 0,
        timing: None,
        predicted: None,
    };

    // Group the plain, untimed run points by (source, scenario, policy).
    let mut groups: HashMap<GroupKey, Vec<usize>> = HashMap::new();
    for (i, point) in matrix.points.iter().enumerate() {
        if let SweepTask::Run(scenario) = point.task {
            if point.timing_runs == 0 {
                groups
                    .entry((source_hash(&point.src), scenario, point.policy))
                    .or_default()
                    .push(i);
            }
        }
    }

    let mut outcomes: Vec<Option<SweepOutcome>> = (0..total).map(|_| None).collect();
    for ((_, scenario, _), idxs) in groups {
        if idxs.len() < 3 {
            continue; // too small to save work: simulate normally below
        }
        // Seed: the smallest core count (first on ties — deterministic,
        // since `idxs` is in matrix order).
        let seed_idx = *idxs
            .iter()
            .min_by_key(|&&i| (matrix.points[i].cores, i))
            .expect("non-empty group");
        let seed_point = &matrix.points[seed_idx];
        if is_cancelled() {
            for &i in &idxs {
                outcomes[i] = Some(cancel_outcome(&matrix.points[i]));
            }
            continue;
        }
        let (mut seed_outcome, profile) = run_point_profiled(seed_point, &matrix.config, &cache);
        let Some(profile) = profile else {
            // The seed failed; nothing to fit. Record the failure and
            // let the rest of the group fall through to full simulation.
            outcomes[seed_idx] = Some(seed_outcome);
            continue;
        };
        let predictor = CyclePredictor::fit(
            &profile,
            seed_point.cores,
            &matrix.config,
            fit_options_for(scenario),
        );
        seed_outcome.predicted = Some(Prediction {
            predicted_cycles: predictor.predict(seed_point.cores),
            seed_cores: seed_point.cores,
        });
        outcomes[seed_idx] = Some(seed_outcome);
        // Validation point: the farthest extrapolation from the seed in
        // log-space — where the model is least trustworthy.
        let validate_idx = *idxs
            .iter()
            .filter(|&&i| i != seed_idx)
            .max_by(|&&a, &&b| {
                let dist = |i: usize| {
                    (matrix.points[i].cores as f64 / seed_point.cores as f64)
                        .log2()
                        .abs()
                };
                dist(a)
                    .partial_cmp(&dist(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a)) // ties: the earlier point
            })
            .expect("group has non-seed points");
        for &i in &idxs {
            if i == seed_idx {
                continue;
            }
            let point = &matrix.points[i];
            let prediction = Prediction {
                predicted_cycles: predictor.predict(point.cores),
                seed_cores: seed_point.cores,
            };
            outcomes[i] = Some(if i == validate_idx {
                if is_cancelled() {
                    cancel_outcome(point)
                } else {
                    let mut outcome = run_point(point, &matrix.config, &cache);
                    outcome.predicted = Some(prediction);
                    outcome
                }
            } else {
                SweepOutcome {
                    name: point.name.clone(),
                    task: point.task,
                    cores: point.cores,
                    result: Ok(SweepPayload::Predicted(prediction)),
                    host_wall_nanos: 0,
                    timing: None,
                    predicted: Some(prediction),
                }
            });
        }
    }

    // Everything left — ungrouped points, undersized groups, failed
    // seeds' siblings — simulates normally.
    for (i, point) in matrix.points.iter().enumerate() {
        if outcomes[i].is_none() {
            outcomes[i] = Some(if is_cancelled() {
                cancel_outcome(point)
            } else {
                run_point(point, &matrix.config, &cache)
            });
        }
    }

    let outcomes: Vec<SweepOutcome> = outcomes
        .into_iter()
        .map(|slot| slot.expect("every point resolved"))
        .collect();
    if let Some(on_row) = opts.on_row {
        for (i, outcome) in outcomes.iter().enumerate() {
            on_row(i, outcome);
        }
    }
    SweepReport {
        outcomes,
        cache: cache.stats(),
        workers: 1,
        host_wall_nanos: started.elapsed().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pi_matrix(workers: usize) -> SweepMatrix {
        let mut params = Bench::PiApprox.default_params(4);
        params.size = 4_000;
        let src: Arc<str> = hsm_workloads::source(Bench::PiApprox, &params).into();
        SweepMatrix::new(SccConfig::table_6_1())
            .workers(workers)
            .point(
                "pi/baseline",
                Arc::clone(&src),
                SweepTask::Run(Mode::PthreadBaseline.into()),
                4,
            )
            .point(
                "pi/offchip",
                Arc::clone(&src),
                SweepTask::Run(Mode::RcceOffChip.into()),
                4,
            )
            .point("pi/hsm", src, SweepTask::Run(Mode::RcceHsm.into()), 4)
    }

    fn cycles(report: &SweepReport) -> Vec<u64> {
        report
            .outcomes
            .iter()
            .map(|o| {
                o.result
                    .as_ref()
                    .expect("point ok")
                    .run_result()
                    .expect("run payload")
                    .timed_cycles
            })
            .collect()
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let serial = sweep(&tiny_pi_matrix(1));
        let parallel = sweep(&tiny_pi_matrix(3));
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 3);
        assert_eq!(cycles(&serial), cycles(&parallel));
        assert_eq!(
            serial.cache, parallel.cache,
            "counters schedule-independent"
        );
        assert!(serial.cache.parse.hits > 0, "modes shared the parse");
        assert_eq!(serial.cache.parse.misses, 1);
    }

    #[test]
    fn sweep_records_errors_per_point_with_stage() {
        let src: Arc<str> = "int main( {".into();
        let matrix = SweepMatrix::new(SccConfig::table_6_1()).point(
            "bad",
            src,
            SweepTask::Run(Mode::RcceHsm.into()),
            2,
        );
        let report = sweep(&matrix);
        assert!(!report.all_ok());
        let err = report.outcomes[0].result.as_ref().unwrap_err();
        assert_eq!(err.stage(), "parse");
    }

    #[test]
    fn streamed_rows_arrive_in_matrix_order() {
        let matrix = tiny_pi_matrix(3);
        let seen: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let on_row = |i: usize, o: &SweepOutcome| {
            seen.lock().unwrap().push((i, o.name.clone()));
        };
        let report = sweep_with(
            &matrix,
            SweepOptions {
                cancel: None,
                on_row: Some(&on_row),
                ..SweepOptions::default()
            },
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), report.outcomes.len());
        for (emitted, (i, name)) in seen.iter().enumerate() {
            assert_eq!(emitted, *i, "rows streamed in matrix order");
            assert_eq!(*name, report.outcomes[*i].name);
        }
    }

    #[test]
    fn cancelled_sweep_marks_remaining_points() {
        let matrix = tiny_pi_matrix(1);
        let cancel = || true;
        let report = sweep_with(
            &matrix,
            SweepOptions {
                cancel: Some(&cancel),
                on_row: None,
                ..SweepOptions::default()
            },
        );
        assert_eq!(report.outcomes.len(), 3, "one outcome per point");
        for o in &report.outcomes {
            assert!(
                matches!(o.result, Err(PipelineError::Cancelled)),
                "{} cancelled",
                o.name
            );
        }
    }

    /// The predict-first acceptance property: a predict-first sweep
    /// simulates strictly fewer points than the matrix has, attaches
    /// ground-truth predictions to its validation points, and keeps the
    /// simulated points' numbers identical to a plain sweep's.
    #[test]
    fn predict_first_simulates_strictly_fewer_points() {
        let mut params = Bench::PiApprox.default_params(4);
        params.size = 4_000;
        let src: Arc<str> = hsm_workloads::source(Bench::PiApprox, &params).into();
        let mut matrix = SweepMatrix::new(SccConfig::table_6_1()).workers(1);
        for cores in [2usize, 4, 8, 16] {
            matrix = matrix.point(
                format!("pi@{cores}/hsm"),
                Arc::clone(&src),
                SweepTask::Run(Mode::RcceHsm.into()),
                cores,
            );
        }
        let plain = sweep(&matrix);
        let predicted = sweep_with(
            &matrix,
            SweepOptions {
                predict_first: true,
                ..SweepOptions::default()
            },
        );
        assert_eq!(predicted.outcomes.len(), 4);
        let simulated: Vec<&SweepOutcome> = predicted
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.result,
                    Ok(SweepPayload::Run(..)) | Ok(SweepPayload::Sharing(..))
                )
            })
            .collect();
        assert_eq!(simulated.len(), 2, "seed + validation only");
        // The seed is the smallest core count, the validation point the
        // farthest extrapolation; both carry a prediction.
        assert_eq!(simulated[0].cores, 2);
        assert_eq!(simulated[1].cores, 16);
        for o in &simulated {
            let prediction = o.predicted.expect("ground truth carries prediction");
            assert_eq!(prediction.seed_cores, 2);
        }
        // The seed's prediction reproduces its measurement exactly.
        let seed = &predicted.outcomes[0];
        let seed_cycles = seed
            .result
            .as_ref()
            .unwrap()
            .run_result()
            .unwrap()
            .total_cycles;
        assert_eq!(seed.predicted.unwrap().predicted_cycles, seed_cycles);
        // Simulated points match the plain sweep bit-for-bit.
        for (p, q) in plain.outcomes.iter().zip(&predicted.outcomes) {
            if let (Ok(a), Ok(b)) = (&p.result, &q.result) {
                if let (Some(ra), Some(rb)) = (a.run_result(), b.run_result()) {
                    assert_eq!(ra.total_cycles, rb.total_cycles, "{}", p.name);
                    assert_eq!(ra.exit_code, rb.exit_code, "{}", p.name);
                }
            }
        }
        // Predicted points carry the payload and the field.
        for o in &predicted.outcomes {
            if let Ok(SweepPayload::Predicted(prediction)) = o.result {
                assert_eq!(Some(prediction), o.predicted);
                assert!(prediction.predicted_cycles > 0);
            }
        }
    }

    /// Predict-first leaves profiles behind: the seed's profile is in
    /// the cache's profile shelf afterwards.
    #[test]
    fn predict_first_deposits_seed_profiles() {
        let mut params = Bench::PiApprox.default_params(4);
        params.size = 4_000;
        let src: Arc<str> = hsm_workloads::source(Bench::PiApprox, &params).into();
        let mut matrix = SweepMatrix::new(SccConfig::table_6_1());
        for cores in [2usize, 4, 8] {
            matrix = matrix.point(
                format!("pi@{cores}/hsm"),
                Arc::clone(&src),
                SweepTask::Run(Mode::RcceHsm.into()),
                cores,
            );
        }
        let report = sweep_with(
            &matrix,
            SweepOptions {
                predict_first: true,
                ..SweepOptions::default()
            },
        );
        assert_eq!(report.cache.profile.misses, 1, "one profiled seed run");
    }

    #[test]
    fn timed_points_record_cache_hot_reruns() {
        let mut matrix = tiny_pi_matrix(2);
        matrix.points[2].timing_runs = 3;
        let report = sweep(&matrix);
        let timing = report.outcomes[2].timing.expect("timing recorded");
        assert_eq!(timing.runs, 3);
        assert!(timing.min_nanos <= timing.median_nanos);
        assert!(timing.median_nanos <= timing.max_nanos);
        assert!(report.outcomes[0].timing.is_none());
    }
}
