//! The persistent, content-addressed artifact store.
//!
//! A [`DiskStore`] keeps pipeline artifacts on disk between processes so
//! a warm sweep — or a long-lived `hsmd` server — skips every expensive
//! stage whose inputs it has seen before. Entries are addressed by the
//! stable string form of their [`ArtifactKey`] (FNV source hash × cores ×
//! policy × spec × opt level), so any process that derives the same key
//! finds the same entry: the store is content-addressed, not
//! session-scoped.
//!
//! On-disk layout (all under `<root>/v1/`, the format-version directory):
//!
//! ```text
//! <root>/v1/parse/<src>                      — original C source
//! <root>/v1/analyze/<src>                    — analysis witness marker
//! <root>/v1/partition/<src>-<policy>-m...    — partition-plan text codec
//! <root>/v1/translate/<src>-c<n>-...         — RCCE source + pass trace
//! <root>/v1/compile/<src>-...-O<n>           — versioned bytecode text
//! ```
//!
//! Every entry starts with a one-line header carrying the entry format
//! version, the artifact stage, an FNV-1a checksum of the payload and the
//! payload length. [`DiskStore::load`] verifies all four and classifies
//! any mismatch as [`LoadOutcome::Corrupt`] (removing the bad file), so a
//! truncated write, a flipped bit or a stale format falls back to a plain
//! recompute — never a wrong artifact.
//!
//! Writes are atomic: the payload lands in a temp file first and is
//! `rename`d into place, so concurrent readers (other processes, `hsmd`
//! worker threads) only ever observe complete entries. An optional byte
//! capacity triggers oldest-first (mtime) eviction after each write.

use crate::cache::ArtifactKey;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk format version: the name of the store's subdirectory and the
/// first field of every entry header. Bump on any incompatible change —
/// old entries are then simply never found.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// FNV-1a over raw bytes (the checksum in every entry header).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What [`DiskStore::load`] found for a key.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A verified entry; the payload bytes.
    Hit(Vec<u8>),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed verification (bad header, length or
    /// checksum); it has been removed so the next write replaces it.
    Corrupt,
}

/// A persistent artifact store rooted at a directory. See the module
/// docs for layout and integrity guarantees.
#[derive(Debug)]
pub struct DiskStore {
    /// The caller-supplied root (version directory lives below it).
    outer: PathBuf,
    /// `<root>/v<STORE_FORMAT_VERSION>` — where entries live.
    root: PathBuf,
    /// Byte budget across all entries (`None` = unbounded).
    capacity: Option<u64>,
    evictions: AtomicU64,
    /// Serializes eviction scans (writes themselves are atomic renames).
    evict_lock: Mutex<()>,
    tmp_counter: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) an unbounded store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskStore> {
        Self::build(dir.into(), None)
    }

    /// Opens a store with a byte capacity; each write that pushes the
    /// total payload volume past `capacity_bytes` evicts the
    /// oldest-modified entries until it fits again.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_capacity(dir: impl Into<PathBuf>, capacity_bytes: u64) -> io::Result<DiskStore> {
        Self::build(dir.into(), Some(capacity_bytes))
    }

    fn build(outer: PathBuf, capacity: Option<u64>) -> io::Result<DiskStore> {
        let root = outer.join(format!("v{STORE_FORMAT_VERSION}"));
        fs::create_dir_all(&root)?;
        Ok(DiskStore {
            outer,
            root,
            capacity,
            evictions: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The directory the store was opened at.
    pub fn dir(&self) -> &Path {
        &self.outer
    }

    /// Evictions performed by this handle since it was opened.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The absolute path of a key's entry.
    pub fn entry_path(&self, key: &ArtifactKey) -> PathBuf {
        self.root.join(key.path())
    }

    /// Number of entries currently on disk (diagnostics and tests).
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures.
    pub fn entry_count(&self) -> io::Result<usize> {
        Ok(self.walk_entries()?.len())
    }

    /// Loads and verifies a key's entry.
    pub fn load(&self, key: &ArtifactKey) -> LoadOutcome {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Miss,
            Err(_) => return LoadOutcome::Corrupt,
        };
        match parse_entry(&bytes, key) {
            Some(payload) => LoadOutcome::Hit(payload),
            None => {
                let _ = fs::remove_file(&path);
                LoadOutcome::Corrupt
            }
        }
    }

    /// Removes a key's entry (used when a verified payload fails its
    /// stage-level decode — same corruption classification, one layer up).
    pub fn remove(&self, key: &ArtifactKey) {
        let _ = fs::remove_file(self.entry_path(key));
    }

    /// Atomically writes a key's entry, then enforces the capacity.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the temp write or rename (callers treat
    /// the store as best-effort and keep the in-memory artifact).
    pub fn save(&self, key: &ArtifactKey, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(key);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut entry = format!(
            "hsmstore {} {} {:016x} {}\n",
            STORE_FORMAT_VERSION,
            key.stage(),
            fnv1a_bytes(payload),
            payload.len()
        )
        .into_bytes();
        entry.extend_from_slice(payload);
        let tmp = self.root.join(format!(
            "tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &entry)?;
        fs::rename(&tmp, &path)?;
        if self.capacity.is_some() {
            self.enforce_capacity();
        }
        Ok(())
    }

    /// All entry files under the version directory (temp files excluded).
    fn walk_entries(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        let stages = match fs::read_dir(&self.root) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for stage in stages {
            let stage = stage?;
            if !stage.file_type()?.is_dir() {
                continue; // stray temp file at the root
            }
            for entry in fs::read_dir(stage.path())? {
                let entry = entry?;
                if entry.file_type()?.is_file() {
                    out.push(entry.path());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Removes oldest-modified entries until the total payload volume
    /// fits the capacity again. Mtime ties break by path order, so the
    /// victim sequence is deterministic for a given directory state.
    fn enforce_capacity(&self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        let _guard = self.evict_lock.lock().expect("evict lock");
        let Ok(paths) = self.walk_entries() else {
            return;
        };
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = paths
            .into_iter()
            .filter_map(|p| {
                let meta = fs::metadata(&p).ok()?;
                Some((meta.modified().ok()?, p, meta.len()))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, _, len)| len).sum();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path, len) in entries {
            if total <= capacity {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Verifies an entry's header and returns the payload.
fn parse_entry(bytes: &[u8], key: &ArtifactKey) -> Option<Vec<u8>> {
    let newline = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let payload = &bytes[newline + 1..];
    let mut toks = header.split(' ');
    if toks.next()? != "hsmstore" {
        return None;
    }
    if toks.next()?.parse::<u32>().ok()? != STORE_FORMAT_VERSION {
        return None;
    }
    if toks.next()? != key.stage() {
        return None;
    }
    let checksum = u64::from_str_radix(toks.next()?, 16).ok()?;
    let len = toks.next()?.parse::<usize>().ok()?;
    if toks.next().is_some() || payload.len() != len || fnv1a_bytes(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hsm-store-test-{}-{}-{}",
            tag,
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(src: u64) -> ArtifactKey {
        ArtifactKey::Parse { src }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = temp_store_dir("roundtrip");
        let store = DiskStore::open(&dir).expect("open");
        assert!(matches!(store.load(&key(1)), LoadOutcome::Miss));
        store.save(&key(1), b"int main() {}").expect("save");
        match store.load(&key(1)) {
            LoadOutcome::Hit(payload) => assert_eq!(payload, b"int main() {}"),
            other => panic!("expected hit, got {other:?}"),
        }
        // A second handle over the same directory sees the entry.
        let second = DiskStore::open(&dir).expect("reopen");
        assert!(matches!(second.load(&key(1)), LoadOutcome::Hit(_)));
        assert_eq!(second.entry_count().expect("count"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_and_removed() {
        let dir = temp_store_dir("corrupt");
        let store = DiskStore::open(&dir).expect("open");
        store.save(&key(2), b"payload bytes").expect("save");
        let path = store.entry_path(&key(2));
        // Flip payload bytes without fixing the checksum.
        let mut bytes = fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(store.load(&key(2)), LoadOutcome::Corrupt));
        // The bad entry was removed: next load is a plain miss.
        assert!(matches!(store.load(&key(2)), LoadOutcome::Miss));
        // Garbage without a header is also corrupt, not a crash.
        store.save(&key(3), b"x").expect("save");
        fs::write(store.entry_path(&key(3)), b"not an entry").expect("rewrite");
        assert!(matches!(store.load(&key(3)), LoadOutcome::Corrupt));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_stage_or_version_is_corrupt() {
        let dir = temp_store_dir("stage");
        let store = DiskStore::open(&dir).expect("open");
        let k = ArtifactKey::Parse { src: 9 };
        store.save(&k, b"src").expect("save");
        // Rewrite the header claiming a different stage.
        let path = store.entry_path(&k);
        let text = String::from_utf8(fs::read(&path).expect("read")).expect("utf8");
        fs::write(&path, text.replacen("parse", "compile", 1)).expect("rewrite");
        assert!(matches!(store.load(&k), LoadOutcome::Corrupt));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_oldest_entries() {
        let dir = temp_store_dir("evict");
        let store = DiskStore::with_capacity(&dir, 256).expect("open");
        let payload = vec![b'x'; 100];
        for i in 0..4u64 {
            store
                .save(&ArtifactKey::Parse { src: i }, &payload)
                .expect("save");
            // Distinct mtimes so the eviction order is age, not ties.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(store.evictions() > 0, "capacity forced evictions");
        assert!(
            store.entry_count().expect("count") < 4,
            "old entries were dropped"
        );
        // The most recent entry always survives.
        assert!(matches!(
            store.load(&ArtifactKey::Parse { src: 3 }),
            LoadOutcome::Hit(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_bytes(b"a"), fnv1a_bytes(b"b"));
    }
}
