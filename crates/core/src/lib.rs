//! # hsm-core — the end-to-end HSM pipeline and experiment runner
//!
//! Ties the whole reproduction together:
//!
//! ```text
//!  pthread C source
//!    └─ hsm-cir  parse
//!        └─ hsm-analysis  stages 1–3 (scope, inter-thread, points-to)
//!            └─ hsm-partition  stage 4 (Algorithm 3)
//!                └─ hsm-translate  stage 5 (Algorithms 4–10) → RCCE C
//!                    └─ hsm-vm  compile to bytecode
//!                        └─ hsm-exec  run on the simulated SCC
//! ```
//!
//! [`experiment`] drives that pipeline over the paper's six benchmarks in
//! the three configurations of the evaluation: the single-core pthread
//! baseline, the 32-core RCCE program restricted to off-chip shared memory
//! (Figure 6.1), and the full HSM program using the MPB placement from
//! Algorithm 3 (Figure 6.2).

#![warn(missing_docs)]

pub mod metrics;

use hsm_exec::{ExecError, RunResult};
use hsm_translate::{TranslateError, TranslateOptions, Translation};
use hsm_workloads::{Bench, Params};
use metrics::PipelineMetrics;
use scc_sim::SccConfig;
use std::fmt;

pub use hsm_partition::Policy;
pub use metrics::{StageMetric, STAGE_NAMES};

/// A pipeline failure at any stage.
#[derive(Debug)]
pub enum PipelineError {
    /// Frontend failure.
    Parse(hsm_cir::ParseError),
    /// Stage 4/5 failure.
    Translate(TranslateError),
    /// Bytecode compilation failure.
    Compile(hsm_vm::CompileError),
    /// Simulation failure.
    Exec(ExecError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Translate(e) => write!(f, "{e}"),
            PipelineError::Compile(e) => write!(f, "{e}"),
            PipelineError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<hsm_cir::ParseError> for PipelineError {
    fn from(e: hsm_cir::ParseError) -> Self {
        PipelineError::Parse(e)
    }
}
impl From<TranslateError> for PipelineError {
    fn from(e: TranslateError) -> Self {
        PipelineError::Translate(e)
    }
}
impl From<hsm_vm::CompileError> for PipelineError {
    fn from(e: hsm_vm::CompileError) -> Self {
        PipelineError::Compile(e)
    }
}
impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

/// Translates pthread C source to an RCCE [`Translation`] with the given
/// core count and placement policy.
///
/// # Errors
///
/// Propagates parse and translation failures.
pub fn translate_source(
    src: &str,
    cores: usize,
    policy: Policy,
) -> Result<Translation, PipelineError> {
    let tu = hsm_cir::parse(src)?;
    Ok(hsm_translate::translate(
        &tu,
        TranslateOptions { cores, policy },
    )?)
}

/// [`translate_source`] plus bytecode compilation, with every stage
/// individually metered (wall time and IR size).
///
/// Runs the same five stages as [`run_translated`] — parse, analyze,
/// partition, translate, compile — but drives them one at a time so each
/// gets its own [`StageMetric`].
///
/// # Errors
///
/// Propagates parse, translation and compilation failures.
pub fn compile_translated_metered(
    src: &str,
    cores: usize,
    policy: Policy,
) -> Result<(Translation, hsm_vm::Program, PipelineMetrics), PipelineError> {
    let mut metrics = PipelineMetrics::default();
    let tu = metrics.measure("parse", || {
        hsm_cir::parse(src)
            .map(|tu| {
                let size = hsm_cir::print_unit(&tu).len();
                (tu, size)
            })
            .map_err(PipelineError::from)
    })?;
    let analysis = metrics.measure("analyze", || {
        let a = hsm_analysis::ProgramAnalysis::analyze(&tu);
        let vars = a.sharing.variables().count();
        Ok::<_, PipelineError>((a, vars))
    })?;
    let plan = metrics.measure("partition", || {
        let shared = hsm_partition::shared_vars_from_analysis(&analysis);
        let spec = hsm_partition::MemorySpec::scc(48);
        let plan = hsm_partition::partition(&shared, &spec, policy);
        let placements = plan.placements.len();
        Ok::<_, PipelineError>((plan, placements))
    })?;
    let translation = metrics.measure("translate", || {
        hsm_translate::translate_with_plan(
            &tu,
            &analysis,
            &plan,
            TranslateOptions { cores, policy },
        )
        .map(|t| {
            let size = t.to_source().len();
            (t, size)
        })
        .map_err(PipelineError::from)
    })?;
    let program = metrics.measure("compile", || {
        hsm_vm::compile(&translation.unit)
            .map(|p| {
                let len = p.code_len();
                (p, len)
            })
            .map_err(PipelineError::from)
    })?;
    Ok((translation, program, metrics))
}

/// Runs pthread C source in baseline mode (all threads on one core).
///
/// # Errors
///
/// Propagates failures from any stage.
pub fn run_baseline(src: &str, config: &SccConfig) -> Result<RunResult, PipelineError> {
    let tu = hsm_cir::parse(src)?;
    let program = hsm_vm::compile(&tu)?;
    Ok(hsm_exec::run_pthread(&program, config)?)
}

/// Translates pthread C source and runs the RCCE result on `cores` cores.
///
/// # Errors
///
/// Propagates failures from any stage.
pub fn run_translated(
    src: &str,
    cores: usize,
    policy: Policy,
    config: &SccConfig,
) -> Result<RunResult, PipelineError> {
    let translation = translate_source(src, cores, policy)?;
    let program = hsm_vm::compile(&translation.unit)?;
    Ok(hsm_exec::run_rcce(&program, cores, config)?)
}

/// Runs pthread C source in baseline mode with stage metering (the
/// baseline pipeline has only two stages: parse and compile).
///
/// # Errors
///
/// Propagates failures from any stage.
pub fn run_baseline_metered(
    src: &str,
    config: &SccConfig,
) -> Result<(RunResult, PipelineMetrics), PipelineError> {
    let mut metrics = PipelineMetrics::default();
    let tu = metrics.measure("parse", || {
        hsm_cir::parse(src)
            .map(|tu| {
                let size = hsm_cir::print_unit(&tu).len();
                (tu, size)
            })
            .map_err(PipelineError::from)
    })?;
    let program = metrics.measure("compile", || {
        hsm_vm::compile(&tu)
            .map(|p| {
                let len = p.code_len();
                (p, len)
            })
            .map_err(PipelineError::from)
    })?;
    Ok((hsm_exec::run_pthread(&program, config)?, metrics))
}

/// Translates, compiles and runs with stage metering.
///
/// # Errors
///
/// Propagates failures from any stage.
pub fn run_translated_metered(
    src: &str,
    cores: usize,
    policy: Policy,
    config: &SccConfig,
) -> Result<(RunResult, PipelineMetrics), PipelineError> {
    let (_, program, metrics) = compile_translated_metered(src, cores, policy)?;
    Ok((hsm_exec::run_rcce(&program, cores, config)?, metrics))
}

/// The outcome of one oracle-checked run: the classification the static
/// analyses produced and what the dynamic sharing-soundness oracle saw.
#[derive(Debug)]
pub struct SharingCheck {
    /// The per-variable verdicts the run was checked against (empty for
    /// RCCE-mode pure race detection).
    pub manifest: hsm_analysis::ClassificationManifest,
    /// The oracle's violations and stream counts.
    pub report: hsm_exec::OracleReport,
    /// The program's ordinary run result (exit code, output, cycles).
    pub result: RunResult,
}

/// Runs pthread C source in baseline mode under the sharing-soundness
/// oracle, validating the Stage 1–3 classification (and the Stage 4
/// placement annotations) against the ground-truth thread semantics.
///
/// The full static pipeline runs first — analysis builds the
/// [`ClassificationManifest`](hsm_analysis::ClassificationManifest),
/// partitioning annotates each shared variable's memory region — then the
/// unmodified pthread program executes with every memory access and
/// synchronization event streamed into an
/// [`Oracle`](hsm_exec::Oracle) in pthread mode.
///
/// # Errors
///
/// Propagates parse, compile and execution failures.
pub fn check_sharing(src: &str, config: &SccConfig) -> Result<SharingCheck, PipelineError> {
    let tu = hsm_cir::parse(src)?;
    let analysis = hsm_analysis::ProgramAnalysis::analyze(&tu);
    let mut manifest = hsm_analysis::ClassificationManifest::from_analysis(&analysis);
    let shared = hsm_partition::shared_vars_from_analysis(&analysis);
    let spec = hsm_partition::MemorySpec::scc(48);
    let plan = hsm_partition::partition(&shared, &spec, Policy::SizeAscending);
    hsm_partition::annotate_manifest(&plan, &mut manifest);
    let program = hsm_vm::compile(&tu)?;
    let mut oracle = hsm_exec::Oracle::new(
        &program,
        manifest.clone(),
        hsm_exec::OracleMode::Pthread,
        config.line_bytes,
    );
    let result = hsm_exec::run_pthread_traced(&program, config, &mut oracle)?;
    Ok(SharingCheck {
        manifest,
        report: oracle.finish(),
        result,
    })
}

/// Translates pthread C source and runs the RCCE result on `cores` cores
/// under the oracle in RCCE mode: pure happens-before race detection over
/// the shared regions, validating the synchronization the translator
/// inserted (a translated program that races was translated wrongly).
///
/// # Errors
///
/// Propagates parse, translation, compile and execution failures.
pub fn check_sharing_rcce(
    src: &str,
    cores: usize,
    policy: Policy,
    config: &SccConfig,
) -> Result<SharingCheck, PipelineError> {
    let translation = translate_source(src, cores, policy)?;
    let program = hsm_vm::compile(&translation.unit)?;
    let mut oracle = hsm_exec::Oracle::new(
        &program,
        hsm_analysis::ClassificationManifest::empty(),
        hsm_exec::OracleMode::Rcce,
        config.line_bytes,
    );
    let result = hsm_exec::run_rcce_traced(&program, cores, config, &mut oracle)?;
    Ok(SharingCheck {
        manifest: hsm_analysis::ClassificationManifest::empty(),
        report: oracle.finish(),
        result,
    })
}

/// Experiment drivers for every table and figure in the evaluation.
pub mod experiment {
    use super::*;

    /// The three evaluated configurations.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        /// 32 threads on one core (the Figure 6.1 denominator).
        PthreadBaseline,
        /// Converted program, shared data forced off-chip (Figure 6.1).
        RcceOffChip,
        /// Converted program with Algorithm 3 MPB placement (Figure 6.2).
        RcceHsm,
    }

    /// Runs one benchmark in one mode.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn run(
        bench: Bench,
        params: &Params,
        mode: Mode,
        config: &SccConfig,
    ) -> Result<RunResult, PipelineError> {
        let src = hsm_workloads::source(bench, params);
        match mode {
            Mode::PthreadBaseline => run_baseline(&src, config),
            Mode::RcceOffChip => run_translated(&src, params.threads, Policy::OffChipOnly, config),
            Mode::RcceHsm => run_translated(&src, params.threads, Policy::SizeAscending, config),
        }
    }

    /// [`run`] with per-stage pipeline instrumentation: the baseline meters
    /// its two stages (parse, compile), the RCCE modes all five.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn run_metered(
        bench: Bench,
        params: &Params,
        mode: Mode,
        config: &SccConfig,
    ) -> Result<(RunResult, PipelineMetrics), PipelineError> {
        let src = hsm_workloads::source(bench, params);
        match mode {
            Mode::PthreadBaseline => run_baseline_metered(&src, config),
            Mode::RcceOffChip => {
                run_translated_metered(&src, params.threads, Policy::OffChipOnly, config)
            }
            Mode::RcceHsm => {
                run_translated_metered(&src, params.threads, Policy::SizeAscending, config)
            }
        }
    }

    /// One bar of Figure 6.1 (or one pair of Figure 6.2).
    #[derive(Debug, Clone)]
    pub struct BenchResult {
        /// Which benchmark.
        pub bench: Bench,
        /// Baseline (1-core pthread) run time in cycles.
        pub pthread_cycles: u64,
        /// Off-chip-only RCCE run time in cycles.
        pub offchip_cycles: u64,
        /// HSM (MPB) RCCE run time in cycles.
        pub hsm_cycles: u64,
        /// Whether the three runs produced the same program output
        /// (multiset of printed lines and exit codes).
        pub outputs_match: bool,
    }

    impl BenchResult {
        /// Figure 6.1's y-axis: baseline time / off-chip RCCE time.
        pub fn offchip_speedup(&self) -> f64 {
            self.pthread_cycles as f64 / self.offchip_cycles.max(1) as f64
        }

        /// Figure 6.2's comparison: off-chip time / on-chip time.
        pub fn hsm_improvement(&self) -> f64 {
            self.offchip_cycles as f64 / self.hsm_cycles.max(1) as f64
        }

        /// Overall speedup of the HSM configuration over the baseline.
        pub fn hsm_speedup(&self) -> f64 {
            self.pthread_cycles as f64 / self.hsm_cycles.max(1) as f64
        }
    }

    /// Runs one benchmark in all three modes and cross-checks outputs.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn run_all_modes(
        bench: Bench,
        params: &Params,
        config: &SccConfig,
    ) -> Result<BenchResult, PipelineError> {
        let base = run(bench, params, Mode::PthreadBaseline, config)?;
        let off = run(bench, params, Mode::RcceOffChip, config)?;
        let hsm = run(bench, params, Mode::RcceHsm, config)?;
        let outputs_match = outputs_equivalent(&base, &off)
            && outputs_equivalent(&base, &hsm)
            && base.exit_code == off.exit_code
            && base.exit_code == hsm.exit_code;
        Ok(BenchResult {
            bench,
            pthread_cycles: base.timed_cycles,
            offchip_cycles: off.timed_cycles,
            hsm_cycles: hsm.timed_cycles,
            outputs_match,
        })
    }

    /// Compares program outputs as deduplicated sorted line sets: the
    /// pthread baseline prints each per-thread line once; the RCCE program
    /// prints per-core lines (same multiset) but replicates any
    /// post-barrier aggregate line on every core.
    pub fn outputs_equivalent(a: &RunResult, b: &RunResult) -> bool {
        let mut la = a.output_sorted();
        let mut lb = b.output_sorted();
        la.dedup();
        lb.dedup();
        la == lb
    }

    /// Figure 6.3: Pi Approximation speedup over the baseline at several
    /// core counts.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn core_scaling(
        bench: Bench,
        core_counts: &[usize],
        config: &SccConfig,
    ) -> Result<Vec<(usize, f64)>, PipelineError> {
        let mut out = Vec::new();
        for &cores in core_counts {
            let params = bench.default_params(cores);
            let base = run(bench, &params, Mode::PthreadBaseline, config)?;
            let hsm = run(bench, &params, Mode::RcceHsm, config)?;
            out.push((
                cores,
                base.timed_cycles as f64 / hsm.timed_cycles.max(1) as f64,
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use experiment::{run_all_modes, Mode};

    fn cfg() -> SccConfig {
        SccConfig::table_6_1()
    }

    /// Reduced sizes so debug-mode tests stay fast.
    fn tiny(bench: Bench, threads: usize) -> Params {
        let mut p = bench.default_params(threads);
        p.size = match bench {
            Bench::CountPrimes => 2_000,
            Bench::PiApprox => 8_000,
            Bench::Sum35 => 16_000,
            Bench::DotProduct => 256,
            Bench::LuDecomp => 8,
            Bench::Stream => 256,
        };
        p.reps = if bench == Bench::LuDecomp { 8 } else { 1 };
        p
    }

    #[test]
    fn pi_pipeline_all_modes_agree_and_speed_up() {
        let p = tiny(Bench::PiApprox, 8);
        let r = run_all_modes(Bench::PiApprox, &p, &cfg()).expect("pipeline");
        assert!(r.outputs_match, "outputs diverged");
        assert!(
            r.offchip_speedup() > 3.0,
            "8 cores should beat 8 threads on 1 core: {:.2}x",
            r.offchip_speedup()
        );
    }

    #[test]
    fn exit_codes_match_reference_model() {
        for bench in [Bench::PiApprox, Bench::CountPrimes, Bench::Sum35] {
            let p = tiny(bench, 4);
            let expected = hsm_workloads::reference_exit(bench, &p);
            let base = experiment::run(bench, &p, Mode::PthreadBaseline, &cfg()).expect("base");
            assert_eq!(base.exit_code, expected, "{bench} baseline");
            let hsm = experiment::run(bench, &p, Mode::RcceHsm, &cfg()).expect("hsm");
            assert_eq!(hsm.exit_code, expected, "{bench} hsm");
        }
    }

    #[test]
    fn stream_benefits_from_mpb() {
        let p = tiny(Bench::Stream, 8);
        let r = run_all_modes(Bench::Stream, &p, &cfg()).expect("pipeline");
        assert!(r.outputs_match);
        assert!(
            r.hsm_improvement() > 1.2,
            "MPB placement should beat off-chip for Stream: {:.2}x",
            r.hsm_improvement()
        );
    }

    #[test]
    fn lu_gains_little_from_mpb() {
        // The batch exceeds the MPB even at reduced size? At tiny size it
        // fits, so force a footprint check instead: with default params it
        // must spill.
        let p = Bench::LuDecomp.default_params(32);
        let spec = hsm_partition::MemorySpec::scc(48);
        assert!(hsm_workloads::shared_footprint(Bench::LuDecomp, &p) > spec.on_chip_capacity);
    }

    #[test]
    fn translate_source_produces_rcce() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let t = translate_source(&src, 4, Policy::SizeAscending).expect("translate");
        let out = t.to_source();
        assert!(out.contains("RCCE_APP"), "{out}");
        assert!(!out.contains("pthread"), "{out}");
    }

    #[test]
    fn parse_errors_surface() {
        let err = run_baseline("int main( {", &cfg()).unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
    }

    #[test]
    fn metered_pipeline_reports_all_five_stages() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let (translation, program, m) =
            compile_translated_metered(&src, 4, Policy::SizeAscending).expect("pipeline");
        let names: Vec<&str> = m.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, STAGE_NAMES);
        assert!(m.stages.iter().all(|s| s.ir_size > 0));
        assert_eq!(
            m.stage("compile").unwrap().ir_size,
            program.code_len(),
            "compile stage size is the instruction count"
        );
        assert_eq!(
            m.stage("translate").unwrap().ir_size,
            translation.to_source().len()
        );
    }

    #[test]
    fn metered_run_matches_unmetered() {
        let p = tiny(Bench::Sum35, 4);
        let plain = experiment::run(Bench::Sum35, &p, Mode::RcceHsm, &cfg()).expect("plain");
        let (metered, m) =
            experiment::run_metered(Bench::Sum35, &p, Mode::RcceHsm, &cfg()).expect("metered");
        assert_eq!(plain.total_cycles, metered.total_cycles);
        assert_eq!(plain.exit_code, metered.exit_code);
        assert_eq!(m.stages.len(), 5);
    }

    #[test]
    fn sharing_check_is_clean_on_disciplined_source() {
        let src = r#"
int sum[4];
void *tf(void *tid) { sum[(int)tid] = (int)tid * 2; return tid; }
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return sum[0] + sum[1] + sum[2] + sum[3];
}
"#;
        let check = check_sharing(src, &cfg()).expect("pipeline");
        assert!(check.report.is_clean(), "{:?}", check.report.violations);
        assert_eq!(check.result.exit_code, 12);
        assert!(check.report.data_accesses > 0);
        assert!(check.report.sync_events > 0, "create/join edges observed");
        let (shared, _, _) = check.manifest.counts();
        assert!(shared > 0, "sum must be classified shared");
    }

    #[test]
    fn sharing_check_flags_escaping_stack_pointer() {
        let src = r#"
void *tf(void *arg) { int *p = (int *)arg; *p = *p + 41; return arg; }
int main() {
    pthread_t t;
    int local = 1;
    pthread_create(&t, NULL, tf, (void *)&local);
    pthread_join(t, NULL);
    return local;
}
"#;
        let check = check_sharing(src, &cfg()).expect("pipeline");
        let classes = check.report.classes();
        assert_eq!(
            classes,
            vec![hsm_exec::ViolationClass::Unsoundness],
            "cross-owner touch of a private local, ordered by create/join: {:?}",
            check.report.violations
        );
        let v = &check.report.violations[0];
        assert_eq!(v.variable.as_deref(), Some("local"));
        assert_eq!(v.unit, 1, "the child thread is the trespasser");
        assert_eq!(check.result.exit_code, 42, "the race-free bug still runs");
    }

    #[test]
    fn sharing_check_flags_unlocked_counter() {
        let src = r#"
int counter;
void *tf(void *tid) {
    int i;
    for (i = 0; i < 50; i++) counter = counter + 1;
    return tid;
}
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return counter;
}
"#;
        let check = check_sharing(src, &cfg()).expect("pipeline");
        let classes = check.report.classes();
        assert_eq!(
            classes,
            vec![hsm_exec::ViolationClass::DataRace],
            "shared verdict is correct, the omission is the lock: {:?}",
            check.report.violations
        );
        assert!(check
            .report
            .violations
            .iter()
            .all(|v| v.variable.as_deref() == Some("counter")));
    }

    #[test]
    fn rcce_sharing_check_validates_translated_sync() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let check = check_sharing_rcce(&src, 4, Policy::SizeAscending, &cfg()).expect("pipeline");
        assert!(check.report.is_clean(), "{:?}", check.report.violations);
        assert!(check.report.sync_events > 0, "barriers observed");
    }

    #[test]
    fn baseline_metering_has_two_stages() {
        let p = tiny(Bench::PiApprox, 4);
        let (_, m) = experiment::run_metered(Bench::PiApprox, &p, Mode::PthreadBaseline, &cfg())
            .expect("baseline");
        let names: Vec<&str> = m.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["parse", "compile"]);
    }
}
