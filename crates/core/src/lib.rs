//! # hsm-core — the end-to-end HSM pipeline and experiment runner
//!
//! Ties the whole reproduction together:
//!
//! ```text
//!  pthread C source
//!    └─ hsm-cir  parse
//!        └─ hsm-analysis  stages 1–3 (scope, inter-thread, points-to)
//!            └─ hsm-partition  stage 4 (Algorithm 3)
//!                └─ hsm-translate  stage 5 (Algorithms 4–10) → RCCE C
//!                    └─ hsm-vm  compile to bytecode
//!                        └─ hsm-exec  run on the simulated SCC
//! ```
//!
//! The primary entry point is the [`Pipeline`] session: a builder over
//! one C source whose intermediate artifacts (parsed unit, analysis,
//! partition plan, translation, compiled bytecode) are memoized in a
//! keyed [`cache::ArtifactCache`] and shared across the baseline,
//! off-chip and HSM configurations. [`experiment::sweep`] fans a whole
//! benchmark × mode × core-count matrix out over worker threads on top
//! of it; [`experiment`]'s figure drivers are built from both. Every run
//! executes under a selectable [`ExecModel`] (coherent ground truth by
//! default; see `hsm_exec::coherence`).

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod json;
pub mod metrics;
mod pipeline;
pub mod protocol;
pub mod scenario;
pub mod server;
pub mod spec;
pub mod store;
pub mod sweep;

use hsm_exec::{ExecError, RunResult};
use hsm_translate::TranslateError;
use hsm_workloads::{Bench, Params};
use metrics::PipelineMetrics;
use scc_sim::SccConfig;
use std::fmt;

pub use cache::{ArtifactCache, ArtifactKey, CacheStats, StageCounters, StoreCounters, StoreStats};
pub use hsm_exec::{ExecModel, Profile};
pub use hsm_partition::{MemorySpec, Policy};
pub use hsm_vm::OptLevel;
pub use metrics::{StageMetric, STAGE_NAMES};
pub use pipeline::Pipeline;
pub use scenario::{Mode, Scenario};

/// A pipeline failure at any stage.
///
/// The failing stage is available from [`PipelineError::stage`]; the
/// underlying stage error is the [`std::error::Error::source`].
#[derive(Debug)]
pub enum PipelineError {
    /// Frontend failure.
    Parse(hsm_cir::ParseError),
    /// Stage 4/5 failure.
    Translate(TranslateError),
    /// Bytecode compilation failure.
    Compile(hsm_vm::CompileError),
    /// Simulation failure.
    Exec(ExecError),
    /// The run was cancelled before it completed (a sweep shutting down,
    /// or a job server enforcing a deadline).
    Cancelled,
    /// The point was satisfied by an analytical prediction in a
    /// predict-first sweep, so no simulated run exists to extract.
    PredictedOnly,
}

impl PipelineError {
    /// The name of the pipeline stage that failed (`"parse"`,
    /// `"translate"`, `"compile"` or `"exec"`), or `"cancelled"`.
    pub fn stage(&self) -> &'static str {
        match self {
            PipelineError::Parse(_) => "parse",
            PipelineError::Translate(_) => "translate",
            PipelineError::Compile(_) => "compile",
            PipelineError::Exec(_) => "exec",
            PipelineError::Cancelled => "cancelled",
            PipelineError::PredictedOnly => "predicted",
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse stage: {e}"),
            PipelineError::Translate(e) => write!(f, "translate stage: {e}"),
            PipelineError::Compile(e) => write!(f, "compile stage: {e}"),
            PipelineError::Exec(e) => write!(f, "exec stage: {e}"),
            PipelineError::Cancelled => write!(f, "run cancelled"),
            PipelineError::PredictedOnly => write!(f, "point predicted, not simulated"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Translate(e) => Some(e),
            PipelineError::Compile(e) => Some(e),
            PipelineError::Exec(e) => Some(e),
            PipelineError::Cancelled | PipelineError::PredictedOnly => None,
        }
    }
}

impl From<hsm_cir::ParseError> for PipelineError {
    fn from(e: hsm_cir::ParseError) -> Self {
        PipelineError::Parse(e)
    }
}
impl From<TranslateError> for PipelineError {
    fn from(e: TranslateError) -> Self {
        PipelineError::Translate(e)
    }
}
impl From<hsm_vm::CompileError> for PipelineError {
    fn from(e: hsm_vm::CompileError) -> Self {
        PipelineError::Compile(e)
    }
}
impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

/// The outcome of one oracle-checked run: the classification the static
/// analyses produced and what the dynamic sharing-soundness oracle saw.
#[derive(Debug)]
pub struct SharingCheck {
    /// The per-variable verdicts the run was checked against (empty for
    /// RCCE-mode pure race detection).
    pub manifest: hsm_analysis::ClassificationManifest,
    /// The oracle's violations and stream counts.
    pub report: hsm_exec::OracleReport,
    /// The program's ordinary run result (exit code, output, cycles).
    pub result: RunResult,
}

/// Experiment drivers for every table and figure in the evaluation.
pub mod experiment {
    use super::*;
    use std::sync::Arc;

    pub use crate::scenario::{Mode, Scenario};
    pub use crate::sweep::{
        fit_options_for, sweep, sweep_with, Prediction, SweepMatrix, SweepOptions, SweepOutcome,
        SweepPayload, SweepPoint, SweepReport, SweepTask, TimingStats,
    };
    pub use hsm_predict::{
        absolute_error, relative_error, CacheModel, CyclePredictor, FitOptions, WorkScaling,
    };

    /// The session for one benchmark × mode point.
    fn point_pipeline(
        src: impl Into<Arc<str>>,
        cores: usize,
        mode: Mode,
        config: &SccConfig,
    ) -> Pipeline {
        Pipeline::new(src)
            .cores(cores)
            .scenario(Scenario::new(mode))
            .config(config.clone())
    }

    /// Runs one benchmark in one mode. A [`Mode::TaskDataflow`] run
    /// expects the source to use the `task_spawn` API.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn run(
        bench: Bench,
        params: &Params,
        mode: Mode,
        config: &SccConfig,
    ) -> Result<RunResult, PipelineError> {
        let src = hsm_workloads::source(bench, params);
        point_pipeline(src, params.threads, mode, config).run_scenario()
    }

    /// [`run`] with per-stage pipeline instrumentation: the baseline and
    /// task modes meter their two stages (parse, compile), the RCCE modes
    /// all five.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn run_metered(
        bench: Bench,
        params: &Params,
        mode: Mode,
        config: &SccConfig,
    ) -> Result<(RunResult, PipelineMetrics), PipelineError> {
        let src = hsm_workloads::source(bench, params);
        point_pipeline(src, params.threads, mode, config).run_scenario_metered()
    }

    /// One bar of Figure 6.1 (or one pair of Figure 6.2).
    #[derive(Debug, Clone)]
    pub struct BenchResult {
        /// Which benchmark.
        pub bench: Bench,
        /// Baseline (1-core pthread) run time in cycles.
        pub pthread_cycles: u64,
        /// Off-chip-only RCCE run time in cycles.
        pub offchip_cycles: u64,
        /// HSM (MPB) RCCE run time in cycles.
        pub hsm_cycles: u64,
        /// Whether the three runs produced the same program output
        /// (multiset of printed lines and exit codes).
        pub outputs_match: bool,
    }

    impl BenchResult {
        /// Figure 6.1's y-axis: baseline time / off-chip RCCE time.
        pub fn offchip_speedup(&self) -> f64 {
            self.pthread_cycles as f64 / self.offchip_cycles.max(1) as f64
        }

        /// Figure 6.2's comparison: off-chip time / on-chip time.
        pub fn hsm_improvement(&self) -> f64 {
            self.offchip_cycles as f64 / self.hsm_cycles.max(1) as f64
        }

        /// Overall speedup of the HSM configuration over the baseline.
        pub fn hsm_speedup(&self) -> f64 {
            self.pthread_cycles as f64 / self.hsm_cycles.max(1) as f64
        }
    }

    /// Unwraps a run payload out of a sweep outcome.
    fn into_run(outcome: SweepOutcome) -> Result<RunResult, PipelineError> {
        outcome.into_run()
    }

    /// Runs one benchmark in all three modes — through one shared-cache
    /// sweep, so the source is parsed and analyzed once — and
    /// cross-checks outputs.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn run_all_modes(
        bench: Bench,
        params: &Params,
        config: &SccConfig,
    ) -> Result<BenchResult, PipelineError> {
        let src: Arc<str> = hsm_workloads::source(bench, params).into();
        let matrix = SweepMatrix::new(config.clone())
            .point(
                "baseline",
                Arc::clone(&src),
                SweepTask::Run(Mode::PthreadBaseline.into()),
                params.threads,
            )
            .point(
                "offchip",
                Arc::clone(&src),
                SweepTask::Run(Mode::RcceOffChip.into()),
                params.threads,
            )
            .point(
                "hsm",
                src,
                SweepTask::Run(Mode::RcceHsm.into()),
                params.threads,
            );
        let report = sweep(&matrix);
        let mut outcomes = report.outcomes.into_iter();
        let base = into_run(outcomes.next().expect("baseline point"))?;
        let off = into_run(outcomes.next().expect("offchip point"))?;
        let hsm = into_run(outcomes.next().expect("hsm point"))?;
        let outputs_match = outputs_equivalent(&base, &off)
            && outputs_equivalent(&base, &hsm)
            && base.exit_code == off.exit_code
            && base.exit_code == hsm.exit_code;
        Ok(BenchResult {
            bench,
            pthread_cycles: base.timed_cycles,
            offchip_cycles: off.timed_cycles,
            hsm_cycles: hsm.timed_cycles,
            outputs_match,
        })
    }

    /// Compares program outputs as deduplicated sorted line sets: the
    /// pthread baseline prints each per-thread line once; the RCCE program
    /// prints per-core lines (same multiset) but replicates any
    /// post-barrier aggregate line on every core.
    pub fn outputs_equivalent(a: &RunResult, b: &RunResult) -> bool {
        let mut la = a.output_sorted();
        let mut lb = b.output_sorted();
        la.dedup();
        lb.dedup();
        la == lb
    }

    /// Figure 6.3: Pi Approximation speedup over the baseline at several
    /// core counts, swept in parallel.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn core_scaling(
        bench: Bench,
        core_counts: &[usize],
        config: &SccConfig,
    ) -> Result<Vec<(usize, f64)>, PipelineError> {
        let matrix = SweepMatrix::core_scaling(
            bench,
            &[Mode::PthreadBaseline, Mode::RcceHsm],
            core_counts,
            config.clone(),
        );
        let report = sweep(&matrix);
        let mut outcomes = report.outcomes.into_iter();
        let mut out = Vec::new();
        for &cores in core_counts {
            let base = into_run(outcomes.next().expect("baseline point"))?;
            let hsm = into_run(outcomes.next().expect("hsm point"))?;
            out.push((
                cores,
                base.timed_cycles as f64 / hsm.timed_cycles.max(1) as f64,
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use experiment::{run_all_modes, Mode};
    use std::sync::Arc;

    fn cfg() -> SccConfig {
        SccConfig::table_6_1()
    }

    /// Reduced sizes so debug-mode tests stay fast.
    fn tiny(bench: Bench, threads: usize) -> Params {
        let mut p = bench.default_params(threads);
        p.size = match bench {
            Bench::CountPrimes => 2_000,
            Bench::PiApprox => 8_000,
            Bench::Sum35 => 16_000,
            Bench::DotProduct => 256,
            Bench::LuDecomp => 8,
            Bench::Stream => 256,
        };
        p.reps = if bench == Bench::LuDecomp { 8 } else { 1 };
        p
    }

    #[test]
    fn pi_pipeline_all_modes_agree_and_speed_up() {
        let p = tiny(Bench::PiApprox, 8);
        let r = run_all_modes(Bench::PiApprox, &p, &cfg()).expect("pipeline");
        assert!(r.outputs_match, "outputs diverged");
        assert!(
            r.offchip_speedup() > 3.0,
            "8 cores should beat 8 threads on 1 core: {:.2}x",
            r.offchip_speedup()
        );
    }

    #[test]
    fn exit_codes_match_reference_model() {
        for bench in [Bench::PiApprox, Bench::CountPrimes, Bench::Sum35] {
            let p = tiny(bench, 4);
            let expected = hsm_workloads::reference_exit(bench, &p);
            let base = experiment::run(bench, &p, Mode::PthreadBaseline, &cfg()).expect("base");
            assert_eq!(base.exit_code, expected, "{bench} baseline");
            let hsm = experiment::run(bench, &p, Mode::RcceHsm, &cfg()).expect("hsm");
            assert_eq!(hsm.exit_code, expected, "{bench} hsm");
        }
    }

    #[test]
    fn stream_benefits_from_mpb() {
        let p = tiny(Bench::Stream, 8);
        let r = run_all_modes(Bench::Stream, &p, &cfg()).expect("pipeline");
        assert!(r.outputs_match);
        assert!(
            r.hsm_improvement() > 1.2,
            "MPB placement should beat off-chip for Stream: {:.2}x",
            r.hsm_improvement()
        );
    }

    #[test]
    fn lu_gains_little_from_mpb() {
        // The batch exceeds the MPB even at reduced size? At tiny size it
        // fits, so force a footprint check instead: with default params it
        // must spill.
        let p = Bench::LuDecomp.default_params(32);
        let spec = hsm_partition::MemorySpec::scc(48);
        assert!(hsm_workloads::shared_footprint(Bench::LuDecomp, &p) > spec.on_chip_capacity);
    }

    #[test]
    fn pipeline_session_produces_rcce() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let t = Pipeline::new(src)
            .cores(4)
            .translation()
            .expect("translate");
        let out = t.to_source();
        assert!(out.contains("RCCE_APP"), "{out}");
        assert!(!out.contains("pthread"), "{out}");
    }

    #[test]
    fn parse_errors_surface_with_stage_and_source() {
        let err = Pipeline::new("int main( {").run_baseline().unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
        assert_eq!(err.stage(), "parse");
        let source = std::error::Error::source(&err).expect("source chain");
        assert!(!source.to_string().is_empty());
        assert!(err.to_string().starts_with("parse stage:"));
    }

    #[test]
    fn metered_pipeline_reports_all_five_stages() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let (translation, program, m) = Pipeline::new(src)
            .cores(4)
            .compile_metered()
            .expect("pipeline");
        let names: Vec<&str> = m.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, STAGE_NAMES);
        assert!(m.stages.iter().all(|s| s.ir_size > 0));
        assert_eq!(
            m.stage("compile").unwrap().ir_size,
            program.code_len(),
            "compile stage size is the instruction count"
        );
        assert_eq!(
            m.stage("translate").unwrap().ir_size,
            translation.to_source().len()
        );
    }

    #[test]
    fn metered_run_matches_unmetered() {
        let p = tiny(Bench::Sum35, 4);
        let plain = experiment::run(Bench::Sum35, &p, Mode::RcceHsm, &cfg()).expect("plain");
        let (metered, m) =
            experiment::run_metered(Bench::Sum35, &p, Mode::RcceHsm, &cfg()).expect("metered");
        assert_eq!(plain.total_cycles, metered.total_cycles);
        assert_eq!(plain.exit_code, metered.exit_code);
        assert_eq!(m.stages.len(), 5);
    }

    #[test]
    fn three_modes_share_one_parse_and_analysis() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let session = Pipeline::new(src).cores(4).config(cfg());
        session.run_baseline().expect("baseline");
        session
            .clone()
            .policy(Policy::OffChipOnly)
            .run()
            .expect("off-chip");
        session
            .clone()
            .policy(Policy::SizeAscending)
            .run()
            .expect("hsm");
        let stats = session.cache_handle().stats();
        assert_eq!(stats.parse.misses, 1, "exactly one parse artifact");
        assert_eq!(stats.analyze.misses, 1, "exactly one analysis artifact");
        assert!(stats.parse.hits >= 2, "both RCCE modes reused the parse");
        assert!(stats.analyze.hits >= 1, "HSM mode reused the analysis");
        assert_eq!(
            stats.translate.misses, 2,
            "off-chip and HSM translations are distinct artifacts"
        );
        assert_eq!(
            stats.compile.misses, 3,
            "baseline + two translations compile separately"
        );
    }

    #[test]
    fn sharing_check_is_clean_on_disciplined_source() {
        let src = r#"
int sum[4];
void *tf(void *tid) { sum[(int)tid] = (int)tid * 2; return tid; }
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return sum[0] + sum[1] + sum[2] + sum[3];
}
"#;
        let check = Pipeline::new(src)
            .config(cfg())
            .check_sharing()
            .expect("pipeline");
        assert!(check.report.is_clean(), "{:?}", check.report.violations);
        assert_eq!(check.result.exit_code, 12);
        assert!(check.report.data_accesses > 0);
        assert!(check.report.sync_events > 0, "create/join edges observed");
        let (shared, _, _) = check.manifest.counts();
        assert!(shared > 0, "sum must be classified shared");
    }

    #[test]
    fn sharing_check_flags_escaping_stack_pointer() {
        let src = r#"
void *tf(void *arg) { int *p = (int *)arg; *p = *p + 41; return arg; }
int main() {
    pthread_t t;
    int local = 1;
    pthread_create(&t, NULL, tf, (void *)&local);
    pthread_join(t, NULL);
    return local;
}
"#;
        let check = Pipeline::new(src)
            .config(cfg())
            .check_sharing()
            .expect("pipeline");
        let classes = check.report.classes();
        assert_eq!(
            classes,
            vec![hsm_exec::ViolationClass::Unsoundness],
            "cross-owner touch of a private local, ordered by create/join: {:?}",
            check.report.violations
        );
        let v = &check.report.violations[0];
        assert_eq!(v.variable.as_deref(), Some("local"));
        assert_eq!(v.unit, 1, "the child thread is the trespasser");
        assert_eq!(check.result.exit_code, 42, "the race-free bug still runs");
    }

    #[test]
    fn sharing_check_flags_unlocked_counter() {
        let src = r#"
int counter;
void *tf(void *tid) {
    int i;
    for (i = 0; i < 50; i++) counter = counter + 1;
    return tid;
}
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return counter;
}
"#;
        let check = Pipeline::new(src)
            .config(cfg())
            .check_sharing()
            .expect("pipeline");
        let classes = check.report.classes();
        assert_eq!(
            classes,
            vec![hsm_exec::ViolationClass::DataRace],
            "shared verdict is correct, the omission is the lock: {:?}",
            check.report.violations
        );
        assert!(check
            .report
            .violations
            .iter()
            .all(|v| v.variable.as_deref() == Some("counter")));
    }

    #[test]
    fn rcce_sharing_check_validates_translated_sync() {
        let p = tiny(Bench::PiApprox, 4);
        let src = hsm_workloads::source(Bench::PiApprox, &p);
        let check = Pipeline::new(src)
            .cores(4)
            .config(cfg())
            .check_sharing_rcce()
            .expect("pipeline");
        assert!(check.report.is_clean(), "{:?}", check.report.violations);
        assert!(check.report.sync_events > 0, "barriers observed");
    }

    #[test]
    fn baseline_metering_has_two_stages() {
        let p = tiny(Bench::PiApprox, 4);
        let (_, m) = experiment::run_metered(Bench::PiApprox, &p, Mode::PthreadBaseline, &cfg())
            .expect("baseline");
        let names: Vec<&str> = m.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["parse", "compile"]);
    }

    /// The sweep engine at 1 worker and at 4 workers must agree on every
    /// deterministic field, including the cache counters.
    #[test]
    fn sweep_matrix_is_worker_count_invariant() {
        let p = tiny(Bench::PiApprox, 4);
        let src: Arc<str> = hsm_workloads::source(Bench::PiApprox, &p).into();
        let build = |workers| {
            experiment::SweepMatrix::new(cfg())
                .workers(workers)
                .point(
                    "baseline",
                    Arc::clone(&src),
                    experiment::SweepTask::Run(Mode::PthreadBaseline.into()),
                    4,
                )
                .point(
                    "offchip",
                    Arc::clone(&src),
                    experiment::SweepTask::Run(Mode::RcceOffChip.into()),
                    4,
                )
                .point(
                    "hsm",
                    Arc::clone(&src),
                    experiment::SweepTask::Run(Mode::RcceHsm.into()),
                    4,
                )
        };
        let serial = experiment::sweep(&build(1));
        let parallel = experiment::sweep(&build(4));
        assert_eq!(serial.cache, parallel.cache);
        for (a, b) in serial.outcomes.iter().zip(parallel.outcomes.iter()) {
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            let (ra, rb) = (ra.run_result().unwrap(), rb.run_result().unwrap());
            assert_eq!(ra.timed_cycles, rb.timed_cycles, "{}", a.name);
            assert_eq!(ra.exit_code, rb.exit_code, "{}", a.name);
        }
    }
}
