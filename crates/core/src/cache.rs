//! Keyed, thread-safe memoization of pipeline artifacts — in memory and,
//! optionally, on disk.
//!
//! A [`Pipeline`](crate::Pipeline) session produces five intermediate
//! artifacts on the way from C source to a simulated run: the parsed
//! [`TranslationUnit`], the Stage 1–3 [`ProgramAnalysis`], the Stage 4
//! [`PartitionPlan`], the Stage 5 [`Translation`] and the compiled
//! [`hsm_vm::Program`]. Every one of them is a pure function of the
//! source plus the session's configuration, so an [`ArtifactCache`]
//! memoizes them behind one [`ArtifactKey`] space of the form *source
//! hash × cores × policy × spec × opt level* (each stage keyed by exactly
//! the inputs it depends on — a parse does not care about the core count,
//! a partition plan does not care how many cores execute it, only how
//! much MPB the spec grants).
//!
//! The cache is shared: cloning a `Pipeline`, or handing the same
//! `Arc<ArtifactCache>` to several sessions (as
//! [`experiment::sweep`](crate::experiment::sweep) does across its worker
//! threads, and as the `hsmd` server does across its clients), makes the
//! baseline, off-chip and HSM runs of one benchmark share a single parse
//! and analysis instead of re-deriving them.
//!
//! Concurrency follows the *pending slot* discipline: the first caller of
//! a key inserts an empty slot (counted as a **miss**) and computes the
//! artifact; concurrent callers find the slot (counted as a **hit**) and
//! block until it fills. Hit/miss counters are therefore deterministic
//! for a fixed access sequence regardless of how many threads drive the
//! cache — the property the sweep determinism test pins.
//!
//! # Persistence
//!
//! [`ArtifactCache::persistent`] attaches a [`DiskStore`]: before a miss
//! computes, the pending-slot holder tries the key's on-disk entry
//! (decoding it through the stage's codec); after a successful compute it
//! writes the entry back. Disk activity is tracked in a separate
//! [`StoreStats`] block — the in-memory hit/miss counters keep their
//! process-local meaning, so a cold and a warm run of the same sweep
//! render byte-identical manifests while the warm run's *store* counters
//! show zero misses. Store entries that fail to verify or decode count as
//! **corrupt**, are removed, and fall back to a plain recompute; errors
//! are never cached, in memory or on disk.

use crate::store::{DiskStore, LoadOutcome};
use hsm_analysis::ProgramAnalysis;
use hsm_cir::TranslationUnit;
use hsm_partition::{MemorySpec, PartitionPlan, Policy};
use hsm_translate::Translation;
use hsm_vm::OptLevel;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a hash of a program source — the first component of every key.
pub fn source_hash(src: &str) -> u64 {
    crate::store::fnv1a_bytes(src.as_bytes())
}

/// The key of any cached artifact: one documented enum covering all five
/// shelves, replacing the former `PlanKey`/`TranslationKey`/`ProgramKey`
/// trio. Each variant carries exactly the inputs its artifact depends
/// on, and [`ArtifactKey::path`] gives a stable string form that doubles
/// as the entry's relative path in the persistent [`DiskStore`].
///
/// The execution model is deliberately absent everywhere: it changes
/// what a run observes, not what any pipeline stage produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKey {
    /// A parsed translation unit — depends only on the source.
    Parse {
        /// [`source_hash`] of the program.
        src: u64,
    },
    /// A Stage 1–3 analysis — depends only on the source.
    Analysis {
        /// [`source_hash`] of the program.
        src: u64,
    },
    /// A Stage 4 partition plan — the plan depends on the analysis
    /// (hence the source), the placement policy and the memory spec, but
    /// not on the executing core count except through the spec derived
    /// from it.
    Plan {
        /// [`source_hash`] of the program.
        src: u64,
        /// Placement policy.
        policy: Policy,
        /// Memory spec partitioned against.
        spec: MemorySpec,
    },
    /// A Stage 5 translation — everything a plan captures plus the
    /// participating core count the translator bakes into the emitted
    /// RCCE source.
    Translation {
        /// [`source_hash`] of the program.
        src: u64,
        /// Participating core count.
        cores: usize,
        /// Placement policy.
        policy: Policy,
        /// Memory spec partitioned against.
        spec: MemorySpec,
    },
    /// Bytecode of the unmodified pthread program at one [`OptLevel`].
    BaselineProgram {
        /// [`source_hash`] of the program.
        src: u64,
        /// Bytecode optimization level.
        opt: OptLevel,
    },
    /// Bytecode of the translated RCCE program: the full translation key
    /// plus the [`OptLevel`], so artifacts for different levels coexist
    /// in one cache (an `O0`-vs-`O2` sweep shares every stage up to
    /// translation and only compiles twice).
    TranslatedProgram {
        /// [`source_hash`] of the program.
        src: u64,
        /// Participating core count.
        cores: usize,
        /// Placement policy.
        policy: Policy,
        /// Memory spec partitioned against.
        spec: MemorySpec,
        /// Bytecode optimization level.
        opt: OptLevel,
    },
    /// A [`Profile`](hsm_exec::Profile) of one simulated run. Unlike the
    /// compile-side artifacts, a profile depends on *everything* that
    /// selects the run — including the full [`Scenario`](crate::Scenario),
    /// because the execution model changes what the run observes even
    /// though it changes no compiled artifact.
    Profile {
        /// [`source_hash`] of the program.
        src: u64,
        /// Simulated core count.
        cores: usize,
        /// Placement policy.
        policy: Policy,
        /// Memory spec partitioned against.
        spec: MemorySpec,
        /// The full scenario (mode × exec model × opt level).
        scenario: crate::Scenario,
    },
}

impl ArtifactKey {
    /// The pipeline stage this key's artifact belongs to — the stats
    /// bucket it counts under and the store subdirectory it lives in
    /// (`"parse"`, `"analyze"`, `"partition"`, `"translate"` or
    /// `"compile"`).
    pub fn stage(&self) -> &'static str {
        match self {
            ArtifactKey::Parse { .. } => "parse",
            ArtifactKey::Analysis { .. } => "analyze",
            ArtifactKey::Plan { .. } => "partition",
            ArtifactKey::Translation { .. } => "translate",
            ArtifactKey::BaselineProgram { .. } | ArtifactKey::TranslatedProgram { .. } => {
                "compile"
            }
            ArtifactKey::Profile { .. } => "profile",
        }
    }

    /// The stable string form: `<stage>/<key fields>`, usable as a
    /// relative filesystem path. Two processes deriving the same key
    /// always produce the same string, which is what makes the
    /// [`DiskStore`] content-addressed.
    pub fn path(&self) -> String {
        match self {
            ArtifactKey::Parse { src } => format!("parse/{src:016x}"),
            ArtifactKey::Analysis { src } => format!("analyze/{src:016x}"),
            ArtifactKey::Plan { src, policy, spec } => format!(
                "partition/{src:016x}-{}-m{}x{}",
                policy.label(),
                spec.on_chip_capacity,
                spec.off_chip_capacity
            ),
            ArtifactKey::Translation {
                src,
                cores,
                policy,
                spec,
            } => format!(
                "translate/{src:016x}-c{cores}-{}-m{}x{}",
                policy.label(),
                spec.on_chip_capacity,
                spec.off_chip_capacity
            ),
            ArtifactKey::BaselineProgram { src, opt } => {
                format!("compile/{src:016x}-base-{}", opt.label())
            }
            ArtifactKey::TranslatedProgram {
                src,
                cores,
                policy,
                spec,
                opt,
            } => format!(
                "compile/{src:016x}-c{cores}-{}-m{}x{}-{}",
                policy.label(),
                spec.on_chip_capacity,
                spec.off_chip_capacity,
                opt.label()
            ),
            ArtifactKey::Profile {
                src,
                cores,
                policy,
                spec,
                scenario,
            } => format!(
                "profile/{src:016x}-c{cores}-{}-m{}x{}-{}-{}-{}",
                policy.label(),
                spec.on_chip_capacity,
                spec.off_chip_capacity,
                scenario.mode.label(),
                scenario.exec_model.label(),
                scenario.opt_level.label()
            ),
        }
    }
}

/// Hit/miss counters of one artifact kind (in-memory lookups).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Lookups served from (or queued behind) an existing artifact.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
}

/// Disk-store counters of one artifact kind. Only misses that reached
/// the store are counted (an in-memory hit never touches disk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Entries loaded and decoded from disk instead of computed.
    pub loads: u64,
    /// Lookups that found no on-disk entry and had to compute.
    pub misses: u64,
    /// Entries written back after a compute.
    pub writes: u64,
    /// Entries that existed but failed verification or decode (removed,
    /// then recomputed).
    pub corrupt: u64,
}

/// A snapshot of every shelf's disk-store counters, plus the store-wide
/// eviction count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Parsed translation units (payload: the original C source).
    pub parse: StoreCounters,
    /// Stage 1–3 analyses (payload: a witness marker; the analysis is
    /// re-derived from the cached unit on load).
    pub analyze: StoreCounters,
    /// Stage 4 partition plans (payload: the plan text codec).
    pub partition: StoreCounters,
    /// Stage 5 translations (payload: RCCE source plus pass trace).
    pub translate: StoreCounters,
    /// Compiled bytecode programs (payload: the versioned `hsm_vm`
    /// serial format).
    pub compile: StoreCounters,
    /// Run profiles (payload: the `hsmprofile` text codec).
    pub profile: StoreCounters,
    /// Entries evicted to enforce the store's byte capacity.
    pub evictions: u64,
}

impl StoreStats {
    /// Total entries loaded from disk across all artifact kinds.
    pub fn total_loads(&self) -> u64 {
        self.parse.loads
            + self.analyze.loads
            + self.partition.loads
            + self.translate.loads
            + self.compile.loads
            + self.profile.loads
    }

    /// Total on-disk misses across all artifact kinds.
    pub fn total_misses(&self) -> u64 {
        self.parse.misses
            + self.analyze.misses
            + self.partition.misses
            + self.translate.misses
            + self.compile.misses
            + self.profile.misses
    }

    /// Total entries written back across all artifact kinds.
    pub fn total_writes(&self) -> u64 {
        self.parse.writes
            + self.analyze.writes
            + self.partition.writes
            + self.translate.writes
            + self.compile.writes
            + self.profile.writes
    }

    /// Total corrupt entries encountered across all artifact kinds.
    pub fn total_corrupt(&self) -> u64 {
        self.parse.corrupt
            + self.analyze.corrupt
            + self.partition.corrupt
            + self.translate.corrupt
            + self.compile.corrupt
            + self.profile.corrupt
    }
}

/// A snapshot of every shelf's counters. The in-memory hit/miss counters
/// are process-local and schedule-independent; `store` is present only
/// when a [`DiskStore`] is attached and reflects host disk state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parsed translation units.
    pub parse: StageCounters,
    /// Stage 1–3 analyses.
    pub analyze: StageCounters,
    /// Stage 4 partition plans.
    pub partition: StageCounters,
    /// Stage 5 translations.
    pub translate: StageCounters,
    /// Compiled bytecode programs.
    pub compile: StageCounters,
    /// Run profiles.
    pub profile: StageCounters,
    /// Persistent-store counters, when a store is attached.
    pub store: Option<StoreStats>,
}

impl CacheStats {
    /// Total hits across all artifact kinds.
    pub fn total_hits(&self) -> u64 {
        self.parse.hits
            + self.analyze.hits
            + self.partition.hits
            + self.translate.hits
            + self.compile.hits
            + self.profile.hits
    }

    /// Total misses across all artifact kinds.
    pub fn total_misses(&self) -> u64 {
        self.parse.misses
            + self.analyze.misses
            + self.partition.misses
            + self.translate.misses
            + self.compile.misses
            + self.profile.misses
    }
}

/// A slot that is either filled with the artifact or pending while the
/// first caller computes it.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// One artifact kind's keyed store.
struct Shelf<V> {
    slots: Mutex<HashMap<ArtifactKey, Slot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    loads: AtomicU64,
    store_misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

impl<V> Default for Shelf<V> {
    fn default() -> Self {
        Shelf {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }
}

impl<V> Shelf<V> {
    /// Returns the cached artifact for `key`, trying the disk store (if
    /// any) and then `compute` on a miss. Concurrent callers of the same
    /// key block until the first one's artifact lands; a failed
    /// computation vacates the key so later callers retry (errors are
    /// never cached). `decode`/`encode` are the stage's store codec; a
    /// decode failure counts as corruption and falls back to `compute`.
    fn get_or_try_insert<E>(
        &self,
        key: ArtifactKey,
        store: Option<&DiskStore>,
        decode: impl FnOnce(&[u8]) -> Option<V>,
        encode: impl FnOnce(&V) -> Vec<u8>,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache map lock");
            match slots.get(&key) {
                Some(slot) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(slot)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Slot<V> = Arc::new(Mutex::new(None));
                    slots.insert(key, Arc::clone(&slot));
                    slot
                }
            }
        };
        let mut filled = slot.lock().expect("cache slot lock");
        if let Some(v) = filled.as_ref() {
            return Ok(Arc::clone(v));
        }
        if let Some(store) = store {
            match store.load(&key) {
                LoadOutcome::Hit(payload) => match decode(&payload) {
                    Some(v) => {
                        self.loads.fetch_add(1, Ordering::Relaxed);
                        let v = Arc::new(v);
                        *filled = Some(Arc::clone(&v));
                        return Ok(v);
                    }
                    None => {
                        // Verified bytes, but the stage codec rejected
                        // them (stale stage format, hash collision):
                        // same corruption handling, one layer up.
                        self.corrupt.fetch_add(1, Ordering::Relaxed);
                        store.remove(&key);
                    }
                },
                LoadOutcome::Corrupt => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
                LoadOutcome::Miss => {
                    self.store_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        match compute() {
            Ok(v) => {
                if let Some(store) = store {
                    // Best-effort write-through: an I/O failure keeps the
                    // in-memory artifact and simply stays a disk miss.
                    if store.save(&key, &encode(&v)).is_ok() {
                        self.writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let v = Arc::new(v);
                *filled = Some(Arc::clone(&v));
                Ok(v)
            }
            Err(e) => {
                self.slots.lock().expect("cache map lock").remove(&key);
                Err(e)
            }
        }
    }

    fn counters(&self) -> StageCounters {
        StageCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn store_counters(&self) -> StoreCounters {
        StoreCounters {
            loads: self.loads.load(Ordering::Relaxed),
            misses: self.store_misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

/// The keyed artifact store shared by [`Pipeline`](crate::Pipeline)
/// sessions, [`experiment::sweep`](crate::experiment::sweep) workers and
/// `hsmd` clients. Optionally backed by a persistent [`DiskStore`] (see
/// the module docs).
#[derive(Default)]
pub struct ArtifactCache {
    parse: Shelf<TranslationUnit>,
    analyze: Shelf<ProgramAnalysis>,
    partition: Shelf<PartitionPlan>,
    translate: Shelf<Translation>,
    compile: Shelf<hsm_vm::Program>,
    profile: Shelf<hsm_exec::Profile>,
    store: Option<DiskStore>,
}

impl ArtifactCache {
    /// A fresh in-memory cache behind an [`Arc`], ready to hand to
    /// several [`Pipeline`](crate::Pipeline) sessions.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A cache backed by a persistent store rooted at `dir` (created if
    /// needed). Entries survive the process; any cache opened over the
    /// same directory — concurrently or later — reuses them.
    ///
    /// # Errors
    ///
    /// Propagates store-directory creation failures.
    pub fn persistent(dir: impl AsRef<Path>) -> io::Result<Arc<Self>> {
        Ok(Self::with_store(DiskStore::open(dir.as_ref())?))
    }

    /// A cache backed by an explicitly configured [`DiskStore`] (e.g.
    /// one with a byte capacity).
    pub fn with_store(store: DiskStore) -> Arc<Self> {
        Arc::new(ArtifactCache {
            store: Some(store),
            ..Self::default()
        })
    }

    /// The attached persistent store, when there is one.
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }

    /// A snapshot of the counters of every shelf (plus the store block
    /// when a [`DiskStore`] is attached).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            parse: self.parse.counters(),
            analyze: self.analyze.counters(),
            partition: self.partition.counters(),
            translate: self.translate.counters(),
            compile: self.compile.counters(),
            profile: self.profile.counters(),
            store: self.store.as_ref().map(|s| StoreStats {
                parse: self.parse.store_counters(),
                analyze: self.analyze.store_counters(),
                partition: self.partition.store_counters(),
                translate: self.translate.store_counters(),
                compile: self.compile.store_counters(),
                profile: self.profile.store_counters(),
                evictions: s.evictions(),
            }),
        }
    }

    /// Memoized parse of `source` (whose [`source_hash`] is `src`).
    ///
    /// The store payload is the original source text itself — the parse
    /// re-runs on load, which guarantees a warm unit is identical to a
    /// cold one and makes a 64-bit hash collision detectable instead of
    /// silently wrong.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn unit_with<E>(
        &self,
        src: u64,
        source: &str,
        compute: impl FnOnce() -> Result<TranslationUnit, E>,
    ) -> Result<Arc<TranslationUnit>, E> {
        self.parse.get_or_try_insert(
            ArtifactKey::Parse { src },
            self.store.as_ref(),
            |payload| {
                if payload != source.as_bytes() {
                    return None; // hash collision or stale entry
                }
                hsm_cir::parse(source).ok()
            },
            |_| source.as_bytes().to_vec(),
            compute,
        )
    }

    /// Memoized Stage 1–3 analysis of the source identified by `src`.
    ///
    /// The analysis holds private derivation state that cannot be
    /// reconstructed field-by-field, so the store entry is a witness
    /// marker and the artifact is re-derived from `unit` on load (still
    /// counted as a load: the marker proves a prior run produced it).
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn analysis_with<E>(
        &self,
        src: u64,
        unit: &TranslationUnit,
        compute: impl FnOnce() -> Result<ProgramAnalysis, E>,
    ) -> Result<Arc<ProgramAnalysis>, E> {
        let marker = format!("hsmanalysis 1 {src:016x}\n");
        let expected = marker.clone();
        self.analyze.get_or_try_insert(
            ArtifactKey::Analysis { src },
            self.store.as_ref(),
            move |payload| {
                if payload != expected.as_bytes() {
                    return None;
                }
                Some(ProgramAnalysis::analyze(unit))
            },
            move |_| marker.into_bytes(),
            compute,
        )
    }

    /// Memoized Stage 4 partition plan for `key` (a
    /// [`ArtifactKey::Plan`]). The store payload is the
    /// [`hsm_partition::serialize_plan`] text codec.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn plan_with<E>(
        &self,
        key: ArtifactKey,
        compute: impl FnOnce() -> Result<PartitionPlan, E>,
    ) -> Result<Arc<PartitionPlan>, E> {
        debug_assert!(matches!(key, ArtifactKey::Plan { .. }));
        self.partition.get_or_try_insert(
            key,
            self.store.as_ref(),
            |payload| {
                let text = std::str::from_utf8(payload).ok()?;
                hsm_partition::parse_plan(text).ok()
            },
            |plan| hsm_partition::serialize_plan(plan).into_bytes(),
            compute,
        )
    }

    /// Memoized Stage 5 translation for `key` (a
    /// [`ArtifactKey::Translation`]). The store payload is the emitted
    /// RCCE source plus the pass trace; on load the source is re-parsed
    /// and the trace re-interned against the standard driver's pass
    /// names, while `analysis` and `plan` (already cached one shelf up)
    /// fill the translation's context fields.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn translation_with<E>(
        &self,
        key: ArtifactKey,
        analysis: &ProgramAnalysis,
        plan: &PartitionPlan,
        compute: impl FnOnce() -> Result<Translation, E>,
    ) -> Result<Arc<Translation>, E> {
        debug_assert!(matches!(key, ArtifactKey::Translation { .. }));
        self.translate.get_or_try_insert(
            key,
            self.store.as_ref(),
            |payload| decode_translation(payload, analysis, plan),
            encode_translation,
            compute,
        )
    }

    /// Memoized bytecode compilation for `key` (a
    /// [`ArtifactKey::BaselineProgram`] or
    /// [`ArtifactKey::TranslatedProgram`]). The store payload is the
    /// versioned [`hsm_vm::serial`] text format — an exact round-trip,
    /// so a warm run executes bit-identical bytecode.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn program_with<E>(
        &self,
        key: ArtifactKey,
        compute: impl FnOnce() -> Result<hsm_vm::Program, E>,
    ) -> Result<Arc<hsm_vm::Program>, E> {
        debug_assert!(matches!(
            key,
            ArtifactKey::BaselineProgram { .. } | ArtifactKey::TranslatedProgram { .. }
        ));
        self.compile.get_or_try_insert(
            key,
            self.store.as_ref(),
            |payload| {
                let text = std::str::from_utf8(payload).ok()?;
                hsm_vm::parse_program(text).ok()
            },
            |program| hsm_vm::serialize_program(program).into_bytes(),
            compute,
        )
    }

    /// Memoized run profile for `key` (an [`ArtifactKey::Profile`]). The
    /// store payload is the deterministic `hsmprofile` text codec, so a
    /// warm sweep serves profiles from disk without re-simulating.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn profile_with<E>(
        &self,
        key: ArtifactKey,
        compute: impl FnOnce() -> Result<hsm_exec::Profile, E>,
    ) -> Result<Arc<hsm_exec::Profile>, E> {
        debug_assert!(matches!(key, ArtifactKey::Profile { .. }));
        self.profile.get_or_try_insert(
            key,
            self.store.as_ref(),
            |payload| {
                let text = std::str::from_utf8(payload).ok()?;
                hsm_exec::Profile::from_text(text).ok()
            },
            |profile| profile.to_text().into_bytes(),
            compute,
        )
    }
}

/// Store codec of the translate shelf: header, pass names, RCCE source.
fn encode_translation(t: &Translation) -> Vec<u8> {
    let mut out = format!("hsmtrans 1 {}\n", t.pass_trace.len());
    for name in &t.pass_trace {
        out.push_str(name);
        out.push('\n');
    }
    out.push_str(&t.to_source());
    out.into_bytes()
}

/// Inverse of [`encode_translation`]; `None` marks the entry corrupt.
fn decode_translation(
    payload: &[u8],
    analysis: &ProgramAnalysis,
    plan: &PartitionPlan,
) -> Option<Translation> {
    let text = std::str::from_utf8(payload).ok()?;
    let (header, rest) = text.split_once('\n')?;
    let n = header.strip_prefix("hsmtrans 1 ")?.parse::<usize>().ok()?;
    let known = hsm_translate::standard_driver().pass_names();
    let mut parts = rest.splitn(n + 1, '\n');
    let mut pass_trace = Vec::with_capacity(n);
    for _ in 0..n {
        let name = parts.next()?;
        pass_trace.push(*known.iter().find(|k| **k == name)?);
    }
    let source = parts.next()?;
    let unit = hsm_cir::parse(source).ok()?;
    Some(Translation {
        unit,
        analysis: analysis.clone(),
        plan: plan.clone(),
        pass_trace,
    })
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_decode<V>(_: &[u8]) -> Option<V> {
        None
    }

    fn no_encode<V>(_: &V) -> Vec<u8> {
        Vec::new()
    }

    #[test]
    fn source_hash_distinguishes_sources() {
        assert_ne!(source_hash("int main() {}"), source_hash("int main( ) {}"));
        assert_eq!(source_hash("x"), source_hash("x"));
    }

    #[test]
    fn shelf_counts_hits_and_misses() {
        let shelf: Shelf<u32> = Shelf::default();
        let key = ArtifactKey::Parse { src: 1 };
        let a = shelf
            .get_or_try_insert::<()>(key, None, no_decode, no_encode, || Ok(10))
            .expect("first insert");
        let b = shelf
            .get_or_try_insert::<()>(key, None, no_decode, no_encode, || {
                panic!("must not recompute")
            })
            .expect("hit");
        assert_eq!(*a, 10);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shelf.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn shelf_does_not_cache_errors() {
        let shelf: Shelf<u32> = Shelf::default();
        let key = ArtifactKey::Parse { src: 7 };
        let err = shelf
            .get_or_try_insert(key, None, no_decode, no_encode, || Err("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        // The failed key was vacated: the next caller recomputes.
        let ok = shelf
            .get_or_try_insert::<&str>(key, None, no_decode, no_encode, || Ok(3))
            .expect("retry");
        assert_eq!(*ok, 3);
        assert_eq!(shelf.counters().misses, 2);
    }

    #[test]
    fn concurrent_lookups_compute_once() {
        let shelf: Arc<Shelf<u64>> = Arc::new(Shelf::default());
        let computed = Arc::new(AtomicU64::new(0));
        let key = ArtifactKey::Parse { src: 42 };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let shelf = Arc::clone(&shelf);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    let v = shelf
                        .get_or_try_insert::<()>(key, None, no_decode, no_encode, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            Ok(99)
                        })
                        .expect("value");
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "computed exactly once");
        let c = shelf.counters();
        assert_eq!(c.hits + c.misses, 8);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn artifact_key_paths_are_stable_and_distinct() {
        let spec = MemorySpec::scc(4);
        let keys = [
            ArtifactKey::Parse { src: 0xabcd },
            ArtifactKey::Analysis { src: 0xabcd },
            ArtifactKey::Plan {
                src: 0xabcd,
                policy: Policy::SizeAscending,
                spec,
            },
            ArtifactKey::Translation {
                src: 0xabcd,
                cores: 4,
                policy: Policy::SizeAscending,
                spec,
            },
            ArtifactKey::BaselineProgram {
                src: 0xabcd,
                opt: OptLevel::O2,
            },
            ArtifactKey::TranslatedProgram {
                src: 0xabcd,
                cores: 4,
                policy: Policy::SizeAscending,
                spec,
                opt: OptLevel::O2,
            },
            ArtifactKey::Profile {
                src: 0xabcd,
                cores: 4,
                policy: Policy::SizeAscending,
                spec,
                scenario: crate::Scenario::default(),
            },
        ];
        let paths: Vec<String> = keys.iter().map(ArtifactKey::path).collect();
        for (i, p) in paths.iter().enumerate() {
            assert!(p.starts_with(keys[i].stage()), "{p} under its stage dir");
            for (j, q) in paths.iter().enumerate() {
                if i != j {
                    assert_ne!(p, q, "distinct keys, distinct paths");
                }
            }
        }
        // Pinned spellings: these are an on-disk format, not free to drift.
        assert_eq!(paths[0], "parse/000000000000abcd");
        assert_eq!(
            paths[3],
            format!(
                "translate/000000000000abcd-c4-size_ascending-m{}x{}",
                spec.on_chip_capacity, spec.off_chip_capacity
            )
        );
        assert_eq!(
            paths[6],
            format!(
                "profile/000000000000abcd-c4-size_ascending-m{}x{}-hsm-coherent-O0",
                spec.on_chip_capacity, spec.off_chip_capacity
            )
        );
    }

    #[test]
    fn stats_without_store_have_no_store_block() {
        let cache = ArtifactCache::shared();
        assert!(cache.stats().store.is_none());
        assert!(cache.store().is_none());
    }
}
