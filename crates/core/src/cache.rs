//! Keyed, thread-safe memoization of pipeline artifacts.
//!
//! A [`Pipeline`](crate::Pipeline) session produces five intermediate
//! artifacts on the way from C source to a simulated run: the parsed
//! [`TranslationUnit`], the Stage 1–3 [`ProgramAnalysis`], the Stage 4
//! [`PartitionPlan`], the Stage 5 [`Translation`] and the compiled
//! [`hsm_vm::Program`]. Every one of them is a pure function of the
//! source plus the session's configuration, so an [`ArtifactCache`]
//! memoizes them behind keys of the form *source hash × cores × policy ×
//! spec* (each stage keyed by exactly the inputs it depends on — a parse
//! does not care about the core count, a partition plan does not care
//! how many cores execute it, only how much MPB the spec grants).
//!
//! The cache is shared: cloning a `Pipeline`, or handing the same
//! `Arc<ArtifactCache>` to several sessions (as
//! [`experiment::sweep`](crate::experiment::sweep) does across its worker
//! threads), makes the baseline, off-chip and HSM runs of one benchmark
//! share a single parse and analysis instead of re-deriving them.
//!
//! Concurrency follows the *pending slot* discipline: the first caller of
//! a key inserts an empty slot (counted as a **miss**) and computes the
//! artifact; concurrent callers find the slot (counted as a **hit**) and
//! block until it fills. Hit/miss counters are therefore deterministic
//! for a fixed access sequence regardless of how many threads drive the
//! cache — the property the sweep determinism test pins.

use hsm_analysis::ProgramAnalysis;
use hsm_cir::TranslationUnit;
use hsm_partition::{MemorySpec, PartitionPlan, Policy};
use hsm_translate::Translation;
use hsm_vm::OptLevel;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a hash of a program source — the first component of every key.
pub fn source_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Key of a partition plan: the plan depends on the analysis (hence the
/// source), the placement policy and the memory spec — but not on the
/// executing core count except through the spec derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`source_hash`] of the program.
    pub src: u64,
    /// Placement policy.
    pub policy: Policy,
    /// Memory spec partitioned against.
    pub spec: MemorySpec,
}

/// Key of a translation (and of its compiled program): everything a
/// [`PlanKey`] captures plus the participating core count the translator
/// bakes into the emitted RCCE source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TranslationKey {
    /// [`source_hash`] of the program.
    pub src: u64,
    /// Participating core count.
    pub cores: usize,
    /// Placement policy.
    pub policy: Policy,
    /// Memory spec partitioned against.
    pub spec: MemorySpec,
}

/// Key of a compiled [`hsm_vm::Program`]: the untranslated pthread
/// baseline depends only on the source, the translated program on the
/// full translation key. Both carry the [`OptLevel`] the bytecode was
/// optimized at, so artifacts for different levels coexist in one cache
/// (an `O0`-vs-`O2` sweep shares every stage up to translation and only
/// compiles twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramKey {
    /// Bytecode of the unmodified pthread program.
    Baseline(u64, OptLevel),
    /// Bytecode of the translated RCCE program.
    Translated(TranslationKey, OptLevel),
}

/// Hit/miss counters of one artifact kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Lookups served from (or queued behind) an existing artifact.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
}

/// A snapshot of every shelf's hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parsed translation units.
    pub parse: StageCounters,
    /// Stage 1–3 analyses.
    pub analyze: StageCounters,
    /// Stage 4 partition plans.
    pub partition: StageCounters,
    /// Stage 5 translations.
    pub translate: StageCounters,
    /// Compiled bytecode programs.
    pub compile: StageCounters,
}

impl CacheStats {
    /// Total hits across all artifact kinds.
    pub fn total_hits(&self) -> u64 {
        self.parse.hits
            + self.analyze.hits
            + self.partition.hits
            + self.translate.hits
            + self.compile.hits
    }

    /// Total misses across all artifact kinds.
    pub fn total_misses(&self) -> u64 {
        self.parse.misses
            + self.analyze.misses
            + self.partition.misses
            + self.translate.misses
            + self.compile.misses
    }
}

/// A slot that is either filled with the artifact or pending while the
/// first caller computes it.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// One artifact kind's keyed store.
struct Shelf<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> Default for Shelf<K, V> {
    fn default() -> Self {
        Shelf {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<K: Eq + Hash + Clone, V> Shelf<K, V> {
    /// Returns the cached artifact for `key`, computing it with `compute`
    /// on a miss. Concurrent callers of the same key block until the
    /// first one's computation lands; a failed computation vacates the
    /// key so later callers retry (errors are never cached).
    fn get_or_try_insert<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache map lock");
            match slots.get(&key) {
                Some(slot) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(slot)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Slot<V> = Arc::new(Mutex::new(None));
                    slots.insert(key.clone(), Arc::clone(&slot));
                    slot
                }
            }
        };
        let mut filled = slot.lock().expect("cache slot lock");
        if let Some(v) = filled.as_ref() {
            return Ok(Arc::clone(v));
        }
        match compute() {
            Ok(v) => {
                let v = Arc::new(v);
                *filled = Some(Arc::clone(&v));
                Ok(v)
            }
            Err(e) => {
                self.slots.lock().expect("cache map lock").remove(&key);
                Err(e)
            }
        }
    }

    fn counters(&self) -> StageCounters {
        StageCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The keyed artifact store shared by [`Pipeline`](crate::Pipeline)
/// sessions and [`experiment::sweep`](crate::experiment::sweep) workers.
#[derive(Default)]
pub struct ArtifactCache {
    parse: Shelf<u64, TranslationUnit>,
    analyze: Shelf<u64, ProgramAnalysis>,
    partition: Shelf<PlanKey, PartitionPlan>,
    translate: Shelf<TranslationKey, Translation>,
    compile: Shelf<ProgramKey, hsm_vm::Program>,
}

impl ArtifactCache {
    /// A fresh cache behind an [`Arc`], ready to hand to several
    /// [`Pipeline`](crate::Pipeline) sessions.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A snapshot of the hit/miss counters of every shelf.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            parse: self.parse.counters(),
            analyze: self.analyze.counters(),
            partition: self.partition.counters(),
            translate: self.translate.counters(),
            compile: self.compile.counters(),
        }
    }

    /// Memoized parse of the source identified by `src`.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn unit_with<E>(
        &self,
        src: u64,
        compute: impl FnOnce() -> Result<TranslationUnit, E>,
    ) -> Result<Arc<TranslationUnit>, E> {
        self.parse.get_or_try_insert(src, compute)
    }

    /// Memoized Stage 1–3 analysis of the source identified by `src`.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn analysis_with<E>(
        &self,
        src: u64,
        compute: impl FnOnce() -> Result<ProgramAnalysis, E>,
    ) -> Result<Arc<ProgramAnalysis>, E> {
        self.analyze.get_or_try_insert(src, compute)
    }

    /// Memoized Stage 4 partition plan for `key`.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn plan_with<E>(
        &self,
        key: PlanKey,
        compute: impl FnOnce() -> Result<PartitionPlan, E>,
    ) -> Result<Arc<PartitionPlan>, E> {
        self.partition.get_or_try_insert(key, compute)
    }

    /// Memoized Stage 5 translation for `key`.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn translation_with<E>(
        &self,
        key: TranslationKey,
        compute: impl FnOnce() -> Result<Translation, E>,
    ) -> Result<Arc<Translation>, E> {
        self.translate.get_or_try_insert(key, compute)
    }

    /// Memoized bytecode compilation for `key`.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error without caching it.
    pub fn program_with<E>(
        &self,
        key: ProgramKey,
        compute: impl FnOnce() -> Result<hsm_vm::Program, E>,
    ) -> Result<Arc<hsm_vm::Program>, E> {
        self.compile.get_or_try_insert(key, compute)
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_hash_distinguishes_sources() {
        assert_ne!(source_hash("int main() {}"), source_hash("int main( ) {}"));
        assert_eq!(source_hash("x"), source_hash("x"));
    }

    #[test]
    fn shelf_counts_hits_and_misses() {
        let shelf: Shelf<u64, u32> = Shelf::default();
        let a = shelf
            .get_or_try_insert::<()>(1, || Ok(10))
            .expect("first insert");
        let b = shelf
            .get_or_try_insert::<()>(1, || panic!("must not recompute"))
            .expect("hit");
        assert_eq!(*a, 10);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shelf.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn shelf_does_not_cache_errors() {
        let shelf: Shelf<u64, u32> = Shelf::default();
        let err = shelf.get_or_try_insert(7, || Err("boom")).unwrap_err();
        assert_eq!(err, "boom");
        // The failed key was vacated: the next caller recomputes.
        let ok = shelf.get_or_try_insert::<&str>(7, || Ok(3)).expect("retry");
        assert_eq!(*ok, 3);
        assert_eq!(shelf.counters().misses, 2);
    }

    #[test]
    fn concurrent_lookups_compute_once() {
        let shelf: Arc<Shelf<u64, u64>> = Arc::new(Shelf::default());
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let shelf = Arc::clone(&shelf);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    let v = shelf
                        .get_or_try_insert::<()>(42, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            Ok(99)
                        })
                        .expect("value");
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "computed exactly once");
        let c = shelf.counters();
        assert_eq!(c.hits + c.misses, 8);
        assert_eq!(c.misses, 1);
    }
}
