//! # hsm-partition — Stage 4: shared-data partitioning (Algorithm 3)
//!
//! Decides, for every shared variable identified by stages 1–3, whether it
//! lives in the small fast **on-chip** shared SRAM (the SCC's Message
//! Passing Buffer) or in the large slow **off-chip** shared DRAM.
//!
//! The paper's Algorithm 3: if everything fits on-chip, put everything
//! on-chip; otherwise sort the variables by size ascending and greedily
//! fill the remaining on-chip space, spilling what does not fit to DRAM.
//! Alternative policies (access-frequency density, descending size,
//! forced off-chip) are provided for the ablation study, along with
//! optional array splitting (§6: "a small portion of the matrix, for
//! example a few rows, may be allocated separately on the MPB").
//!
//! ```
//! use hsm_partition::{partition, MemorySpec, Policy, SharedVar};
//!
//! let vars = vec![
//!     SharedVar::new("big", 6000, 10),
//!     SharedVar::new("small", 100, 500),
//! ];
//! let spec = MemorySpec::with_on_chip(4096);
//! let plan = partition(&vars, &spec, Policy::SizeAscending);
//! assert!(plan.is_on_chip("small"));
//! assert!(!plan.is_on_chip("big"));
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Per-core MPB capacity on the Intel SCC, in bytes.
pub const SCC_MPB_BYTES_PER_CORE: usize = 8 * 1024;

/// Total MPB capacity across all 48 SCC cores, in bytes.
pub const SCC_MPB_TOTAL_BYTES: usize = 48 * SCC_MPB_BYTES_PER_CORE;

/// The memory resources Algorithm 3 partitions into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemorySpec {
    /// Usable on-chip shared SRAM in bytes.
    pub on_chip_capacity: usize,
    /// Usable off-chip shared DRAM in bytes (effectively unbounded on the
    /// SCC: up to 64 GB).
    pub off_chip_capacity: usize,
}

impl MemorySpec {
    /// The SCC configuration for a run using `cores` cores: 8 KB of MPB
    /// per participating core, 64 GB DRAM.
    pub fn scc(cores: usize) -> Self {
        MemorySpec {
            on_chip_capacity: cores * SCC_MPB_BYTES_PER_CORE,
            off_chip_capacity: 64 * 1024 * 1024 * 1024,
        }
    }

    /// A spec with an explicit on-chip capacity (off-chip unbounded).
    pub fn with_on_chip(bytes: usize) -> Self {
        MemorySpec {
            on_chip_capacity: bytes,
            off_chip_capacity: usize::MAX / 2,
        }
    }
}

impl Default for MemorySpec {
    fn default() -> Self {
        MemorySpec::scc(48)
    }
}

/// One shared variable as seen by the partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedVar {
    /// Variable name.
    pub name: String,
    /// Total footprint in bytes (`mem_size`: Size × Type size).
    pub mem_size: usize,
    /// Estimated (loop-weighted) total access count across all threads.
    pub access_weight: u64,
    /// Whether the variable is an array that may be split between the two
    /// memories.
    pub splittable: bool,
    /// Element size in bytes (split granularity); 0 for scalars.
    pub elem_size: usize,
}

impl SharedVar {
    /// Creates a non-splittable shared variable.
    pub fn new(name: impl Into<String>, mem_size: usize, access_weight: u64) -> Self {
        SharedVar {
            name: name.into(),
            mem_size,
            access_weight,
            splittable: false,
            elem_size: 0,
        }
    }

    /// Creates a splittable array variable with the given element size.
    pub fn array(
        name: impl Into<String>,
        mem_size: usize,
        access_weight: u64,
        elem_size: usize,
    ) -> Self {
        SharedVar {
            name: name.into(),
            mem_size,
            access_weight,
            splittable: true,
            elem_size,
        }
    }

    /// Access density: weighted accesses per byte.
    pub fn density(&self) -> f64 {
        if self.mem_size == 0 {
            0.0
        } else {
            self.access_weight as f64 / self.mem_size as f64
        }
    }
}

/// Where a variable (or a part of it) was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// In the on-chip shared SRAM (MPB).
    OnChip,
    /// In the off-chip shared DRAM.
    OffChip,
    /// Split: the leading `on_chip_bytes` on-chip, the rest off-chip.
    Split {
        /// Bytes placed on-chip (a prefix of the variable).
        on_chip_bytes: usize,
    },
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::OnChip => write!(f, "on-chip"),
            Placement::OffChip => write!(f, "off-chip"),
            Placement::Split { on_chip_bytes } => {
                write!(f, "split({on_chip_bytes}B on-chip)")
            }
        }
    }
}

/// Partitioning policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// Algorithm 3 as written: everything on-chip if it fits; otherwise
    /// sort ascending by size and greedily fill.
    #[default]
    SizeAscending,
    /// Greedy by access density (accesses per byte), highest first — the
    /// "further granularity provided by frequency of access" refinement.
    FrequencyDensity,
    /// Greedy by size descending (ablation baseline).
    SizeDescending,
    /// Everything off-chip (the Figure 6.1 configuration).
    OffChipOnly,
}

impl Policy {
    /// Every policy, in ablation-report order.
    pub const ALL: [Policy; 4] = [
        Policy::SizeAscending,
        Policy::FrequencyDensity,
        Policy::SizeDescending,
        Policy::OffChipOnly,
    ];

    /// A short stable label, used in manifests, sweep specs and the
    /// persistent artifact store's on-disk paths.
    pub fn label(self) -> &'static str {
        match self {
            Policy::SizeAscending => "size_ascending",
            Policy::FrequencyDensity => "frequency_density",
            Policy::SizeDescending => "size_descending",
            Policy::OffChipOnly => "off_chip_only",
        }
    }

    /// Parses a [`Policy::label`] back to the policy.
    pub fn parse(label: &str) -> Option<Policy> {
        Policy::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// One variable's placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedVar {
    /// The variable.
    pub var: SharedVar,
    /// Where it went.
    pub placement: Placement,
}

/// The output of Stage 4.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// Placement decisions in input order.
    pub placements: Vec<PlacedVar>,
    /// Bytes of on-chip memory consumed.
    pub on_chip_used: usize,
    /// The spec partitioned against.
    pub spec: MemorySpec,
    /// The policy used.
    pub policy: Policy,
}

impl PartitionPlan {
    /// The placement of `name`, if the variable is in the plan.
    pub fn placement(&self, name: &str) -> Option<Placement> {
        self.placements
            .iter()
            .find(|p| p.var.name == name)
            .map(|p| p.placement)
    }

    /// Whether `name` is entirely on-chip.
    pub fn is_on_chip(&self, name: &str) -> bool {
        matches!(self.placement(name), Some(Placement::OnChip))
    }

    /// Bytes of on-chip capacity left unused.
    pub fn on_chip_free(&self) -> usize {
        self.spec.on_chip_capacity.saturating_sub(self.on_chip_used)
    }

    /// Fraction of weighted accesses served on-chip (placement quality
    /// metric used by the policy ablation). Split variables contribute
    /// proportionally to the bytes placed on-chip.
    pub fn on_chip_access_fraction(&self) -> f64 {
        let total: f64 = self
            .placements
            .iter()
            .map(|p| p.var.access_weight as f64)
            .sum();
        if total == 0.0 {
            return 0.0;
        }
        let on_chip: f64 = self
            .placements
            .iter()
            .map(|p| match p.placement {
                Placement::OnChip => p.var.access_weight as f64,
                Placement::OffChip => 0.0,
                Placement::Split { on_chip_bytes } => {
                    p.var.access_weight as f64 * on_chip_bytes as f64 / p.var.mem_size.max(1) as f64
                }
            })
            .sum();
        on_chip / total
    }

    /// A rendered table of the plan.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "partition plan ({:?}, on-chip {} B, used {} B)\n",
            self.policy, self.spec.on_chip_capacity, self.on_chip_used
        );
        for p in &self.placements {
            out.push_str(&format!(
                "  {:<16} {:>10} B  w={:<10} -> {}\n",
                p.var.name, p.var.mem_size, p.var.access_weight, p.placement
            ));
        }
        out
    }
}

/// Runs Algorithm 3 (or an ablation variant) over the shared variable set.
///
/// Placement is deterministic: ties in the sort order are broken by input
/// order.
pub fn partition(vars: &[SharedVar], spec: &MemorySpec, policy: Policy) -> PartitionPlan {
    partition_with_split(vars, spec, policy, false)
}

/// Like [`partition`] but optionally splitting the most access-dense
/// non-fitting splittable array so its leading rows land on-chip (the LU
/// refinement discussed with Figure 6.2).
pub fn partition_with_split(
    vars: &[SharedVar],
    spec: &MemorySpec,
    policy: Policy,
    allow_split: bool,
) -> PartitionPlan {
    let total: usize = vars.iter().map(|v| v.mem_size).sum();

    let mut on_chip: Vec<bool> = vec![false; vars.len()];
    let mut split_bytes: Vec<usize> = vec![0; vars.len()];
    let mut used = 0usize;

    if policy != Policy::OffChipOnly {
        if total <= spec.on_chip_capacity {
            // Best case: everything fits on-chip.
            on_chip.iter_mut().for_each(|b| *b = true);
            used = total;
        } else {
            let mut order: Vec<usize> = (0..vars.len()).collect();
            match policy {
                Policy::SizeAscending => {
                    order.sort_by_key(|&i| (vars[i].mem_size, i));
                }
                Policy::SizeDescending => {
                    order.sort_by_key(|&i| (usize::MAX - vars[i].mem_size, i));
                }
                Policy::FrequencyDensity => {
                    order.sort_by(|&a, &b| {
                        vars[b]
                            .density()
                            .partial_cmp(&vars[a].density())
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    });
                }
                Policy::OffChipOnly => unreachable!(),
            }
            let mut remaining = spec.on_chip_capacity;
            for &i in &order {
                if vars[i].mem_size <= remaining {
                    on_chip[i] = true;
                    remaining -= vars[i].mem_size;
                    used += vars[i].mem_size;
                }
            }
            if allow_split && remaining > 0 {
                let candidate = order
                    .iter()
                    .copied()
                    .filter(|&i| !on_chip[i] && vars[i].splittable && vars[i].elem_size > 0)
                    .max_by(|&a, &b| {
                        vars[a]
                            .density()
                            .partial_cmp(&vars[b].density())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                if let Some(i) = candidate {
                    let elems = remaining / vars[i].elem_size;
                    let bytes = elems * vars[i].elem_size;
                    if bytes > 0 {
                        split_bytes[i] = bytes;
                        used += bytes;
                    }
                }
            }
        }
    }

    let placements = vars
        .iter()
        .enumerate()
        .map(|(i, v)| PlacedVar {
            var: v.clone(),
            placement: if on_chip[i] {
                Placement::OnChip
            } else if split_bytes[i] > 0 {
                Placement::Split {
                    on_chip_bytes: split_bytes[i],
                }
            } else {
                Placement::OffChip
            },
        })
        .collect();

    PartitionPlan {
        placements,
        on_chip_used: used,
        spec: *spec,
        policy,
    }
}

/// Builds the partitioner's input from the analysis results: every shared
/// variable with its footprint and loop-weighted access weight.
pub fn shared_vars_from_analysis(analysis: &hsm_analysis::ProgramAnalysis) -> Vec<SharedVar> {
    analysis
        .shared_variables()
        .into_iter()
        // Pthread bookkeeping objects (mutexes, thread handles) are
        // translated away by Stage 5, never placed in shared memory.
        .filter(|v| !v.ty.is_pthread_type())
        .map(|v| {
            let w = analysis.scope.weighted_counts(&v.key);
            SharedVar {
                name: v.key.name.clone(),
                mem_size: v.mem_size,
                access_weight: w.total(),
                splittable: v.ty.is_array(),
                elem_size: if v.ty.is_array() {
                    v.ty.scalar_size()
                } else {
                    0
                },
            }
        })
        .collect()
}

/// Copies a plan's placement decisions into a classification manifest's
/// region column (the Stage 4 step of building the oracle's input).
/// Variables absent from the plan keep their default region.
pub fn annotate_manifest(
    plan: &PartitionPlan,
    manifest: &mut hsm_analysis::ClassificationManifest,
) {
    use hsm_analysis::RegionVerdict;
    for p in &plan.placements {
        let region = match p.placement {
            Placement::OnChip => RegionVerdict::SharedOnChip,
            Placement::OffChip => RegionVerdict::SharedOffChip,
            Placement::Split { .. } => RegionVerdict::SharedSplit,
        };
        manifest.set_region(&p.var.name, region);
    }
}

// ------------------------------------------------------------ codec --

/// Plan codec format version; bump on any layout change.
pub const PLAN_SERIAL_VERSION: u32 = 1;

/// Serializes a plan to the versioned text form the persistent artifact
/// store keeps on disk. [`parse_plan`] is the exact inverse.
pub fn serialize_plan(plan: &PartitionPlan) -> String {
    let mut out = format!(
        "hsmplan {} {} {} {} {}\n",
        PLAN_SERIAL_VERSION,
        plan.policy.label(),
        plan.spec.on_chip_capacity,
        plan.spec.off_chip_capacity,
        plan.on_chip_used
    );
    for p in &plan.placements {
        let placement = match p.placement {
            Placement::OnChip => "on".to_string(),
            Placement::OffChip => "off".to_string(),
            Placement::Split { on_chip_bytes } => format!("split:{on_chip_bytes}"),
        };
        out.push_str(&format!(
            "var {} {} {} {} {} {}\n",
            p.var.mem_size,
            p.var.access_weight,
            u8::from(p.var.splittable),
            p.var.elem_size,
            placement,
            p.var.name
        ));
    }
    out
}

/// Parses [`serialize_plan`]'s output back into a plan.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed line —
/// the store maps any error to "corrupt entry, recompute".
pub fn parse_plan(text: &str) -> Result<PartitionPlan, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty plan")?;
    let toks: Vec<&str> = header.split(' ').collect();
    if toks.len() != 6 || toks[0] != "hsmplan" {
        return Err(format!("malformed plan header `{header}`"));
    }
    if toks[1] != PLAN_SERIAL_VERSION.to_string() {
        return Err(format!(
            "plan format version {}, expected {PLAN_SERIAL_VERSION}",
            toks[1]
        ));
    }
    let policy = Policy::parse(toks[2]).ok_or_else(|| format!("unknown policy `{}`", toks[2]))?;
    let num = |s: &str| s.parse::<usize>().map_err(|e| format!("bad number: {e}"));
    let spec = MemorySpec {
        on_chip_capacity: num(toks[3])?,
        off_chip_capacity: num(toks[4])?,
    };
    let on_chip_used = num(toks[5])?;
    let mut placements = Vec::new();
    for line in lines {
        let rest = line
            .strip_prefix("var ")
            .ok_or_else(|| format!("malformed plan line `{line}`"))?;
        let toks: Vec<&str> = rest.splitn(6, ' ').collect();
        if toks.len() != 6 {
            return Err(format!("malformed plan line `{line}`"));
        }
        let placement = match toks[4] {
            "on" => Placement::OnChip,
            "off" => Placement::OffChip,
            other => match other.strip_prefix("split:") {
                Some(n) => Placement::Split {
                    on_chip_bytes: num(n)?,
                },
                None => return Err(format!("unknown placement `{other}`")),
            },
        };
        placements.push(PlacedVar {
            var: SharedVar {
                name: toks[5].to_string(),
                mem_size: num(toks[0])?,
                access_weight: toks[1]
                    .parse::<u64>()
                    .map_err(|e| format!("bad number: {e}"))?,
                splittable: match toks[2] {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad splittable flag `{other}`")),
                },
                elem_size: num(toks[3])?,
            },
            placement,
        });
    }
    Ok(PartitionPlan {
        placements,
        on_chip_used,
        spec,
        policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str, size: usize, w: u64) -> SharedVar {
        SharedVar::new(name, size, w)
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.label()), Some(p));
        }
        assert_eq!(Policy::parse("nonsense"), None);
    }

    #[test]
    fn plan_codec_round_trips() {
        let vars = vec![
            v("big", 6000, 10),
            SharedVar::array("matrix", 4096, 900, 16),
            v("small", 100, 500),
        ];
        for policy in Policy::ALL {
            let plan = partition_with_split(&vars, &MemorySpec::with_on_chip(4096), policy, true);
            let text = serialize_plan(&plan);
            assert_eq!(parse_plan(&text).expect("parses"), plan, "{policy:?}");
        }
    }

    #[test]
    fn plan_codec_rejects_corruption() {
        let plan = partition(
            &[v("a", 10, 1)],
            &MemorySpec::with_on_chip(64),
            Policy::default(),
        );
        let text = serialize_plan(&plan);
        assert!(parse_plan("").is_err());
        assert!(parse_plan(&text.replacen("hsmplan 1", "hsmplan 9", 1)).is_err());
        assert!(parse_plan(&text.replacen("size_ascending", "bogus", 1)).is_err());
        assert!(parse_plan(&format!("{text}junk line\n")).is_err());
    }

    #[test]
    fn annotate_manifest_copies_placements() {
        use hsm_analysis::RegionVerdict;
        let tu = hsm_cir::parse(
            r#"
int big[4096];
int small;
void *tf(void *x) { big[0] = small; return x; }
int main() {
    pthread_t t;
    small = 1;
    pthread_create(&t, NULL, tf, NULL);
    pthread_join(t, NULL);
    return 0;
}
"#,
        )
        .unwrap();
        let analysis = hsm_analysis::ProgramAnalysis::analyze(&tu);
        let vars = shared_vars_from_analysis(&analysis);
        let plan = partition(&vars, &MemorySpec::with_on_chip(64), Policy::SizeAscending);
        let mut manifest = hsm_analysis::ClassificationManifest::from_analysis(&analysis);
        annotate_manifest(&plan, &mut manifest);
        assert_eq!(
            manifest.entry("small", None).unwrap().region,
            RegionVerdict::SharedOnChip,
            "fits in the 64-byte on-chip budget"
        );
        // The big array exceeds on-chip capacity: off-chip or split.
        let big = manifest.entry("big", None).unwrap().region;
        assert_ne!(big, RegionVerdict::Private);
        assert_ne!(big, RegionVerdict::SharedOnChip);
    }

    #[test]
    fn everything_fits_goes_on_chip() {
        let vars = vec![v("a", 100, 1), v("b", 200, 1), v("c", 300, 1)];
        let plan = partition(
            &vars,
            &MemorySpec::with_on_chip(1000),
            Policy::SizeAscending,
        );
        assert!(plan
            .placements
            .iter()
            .all(|p| p.placement == Placement::OnChip));
        assert_eq!(plan.on_chip_used, 600);
        assert_eq!(plan.on_chip_free(), 400);
    }

    #[test]
    fn overflow_sorts_ascending_and_spills_largest() {
        let vars = vec![v("large", 800, 1), v("small", 100, 1), v("mid", 300, 1)];
        let plan = partition(&vars, &MemorySpec::with_on_chip(500), Policy::SizeAscending);
        assert!(plan.is_on_chip("small"));
        assert!(plan.is_on_chip("mid"));
        assert_eq!(plan.placement("large"), Some(Placement::OffChip));
        assert_eq!(plan.on_chip_used, 400);
    }

    #[test]
    fn greedy_skips_non_fitting_but_continues() {
        let vars = vec![v("c", 480, 1), v("a", 100, 1), v("b", 450, 1)];
        let plan = partition(
            &vars,
            &MemorySpec::with_on_chip(1000),
            Policy::SizeAscending,
        );
        assert!(plan.is_on_chip("a"));
        assert!(plan.is_on_chip("b"));
        assert!(!plan.is_on_chip("c"));
    }

    #[test]
    fn off_chip_only_places_nothing_on_chip() {
        let vars = vec![v("a", 1, 1000)];
        let plan = partition(&vars, &MemorySpec::with_on_chip(1000), Policy::OffChipOnly);
        assert_eq!(plan.placement("a"), Some(Placement::OffChip));
        assert_eq!(plan.on_chip_used, 0);
        assert_eq!(plan.on_chip_access_fraction(), 0.0);
    }

    #[test]
    fn frequency_density_prefers_hot_small_data() {
        let vars = vec![v("cold", 400, 10), v("hot", 400, 10000)];
        let plan = partition(
            &vars,
            &MemorySpec::with_on_chip(400),
            Policy::FrequencyDensity,
        );
        assert!(plan.is_on_chip("hot"));
        assert!(!plan.is_on_chip("cold"));
        assert!(plan.on_chip_access_fraction() > 0.99);
    }

    #[test]
    fn size_descending_fills_big_first() {
        let vars = vec![v("a", 100, 1), v("b", 900, 1)];
        let plan = partition(
            &vars,
            &MemorySpec::with_on_chip(950),
            Policy::SizeDescending,
        );
        assert!(plan.is_on_chip("b"));
        assert!(!plan.is_on_chip("a"));
    }

    #[test]
    fn split_places_prefix_rows_on_chip() {
        // A 64x64 double matrix (32 KB) with 8 KB on-chip: whole elements
        // (8 B) are split on-chip.
        let matrix = SharedVar::array("m", 64 * 64 * 8, 100_000, 8);
        let plan = partition_with_split(
            &[matrix],
            &MemorySpec::with_on_chip(8 * 1024),
            Policy::SizeAscending,
            true,
        );
        let Some(Placement::Split { on_chip_bytes }) = plan.placement("m") else {
            panic!("expected split placement: {}", plan.to_text());
        };
        assert_eq!(on_chip_bytes, 8 * 1024);
        assert_eq!(on_chip_bytes % 8, 0, "split at element granularity");
    }

    #[test]
    fn split_not_applied_without_flag() {
        let matrix = SharedVar::array("m", 32 * 1024, 1, 8);
        let plan = partition(
            &[matrix],
            &MemorySpec::with_on_chip(8 * 1024),
            Policy::SizeAscending,
        );
        assert_eq!(plan.placement("m"), Some(Placement::OffChip));
    }

    #[test]
    fn never_exceeds_capacity() {
        let vars: Vec<SharedVar> = (0..50)
            .map(|i| v(&format!("v{i}"), 97 * (i + 1), 1))
            .collect();
        for cap in [0usize, 100, 1000, 5000] {
            for policy in [
                Policy::SizeAscending,
                Policy::SizeDescending,
                Policy::FrequencyDensity,
            ] {
                let plan = partition(&vars, &MemorySpec::with_on_chip(cap), policy);
                assert!(plan.on_chip_used <= cap, "{policy:?} cap={cap}");
            }
        }
    }

    #[test]
    fn scc_spec_scales_with_cores() {
        assert_eq!(MemorySpec::scc(32).on_chip_capacity, 32 * 8192);
        assert_eq!(MemorySpec::default().on_chip_capacity, SCC_MPB_TOTAL_BYTES);
    }

    #[test]
    fn example_4_1_shared_set_fits_on_chip() {
        let tu = hsm_cir::parse(
            r#"
int *ptr;
int sum[3] = {0};
void *tf(void *tid) { sum[(int)tid] += *ptr; return tid; }
int main() {
    int tmp = 1;
    pthread_t t;
    ptr = &tmp;
    pthread_create(&t, NULL, tf, (void *)0);
    return 0;
}
"#,
        )
        .unwrap();
        let analysis = hsm_analysis::ProgramAnalysis::analyze(&tu);
        let vars = shared_vars_from_analysis(&analysis);
        let names: Vec<_> = vars.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["ptr", "sum", "tmp"]);
        let plan = partition(&vars, &MemorySpec::scc(32), Policy::SizeAscending);
        assert!(plan
            .placements
            .iter()
            .all(|p| p.placement == Placement::OnChip));
    }

    #[test]
    fn empty_input_produces_empty_plan() {
        let plan = partition(&[], &MemorySpec::default(), Policy::SizeAscending);
        assert!(plan.placements.is_empty());
        assert_eq!(plan.on_chip_used, 0);
    }
}
