//! Byte-addressable data storage for the simulated address spaces.
//!
//! Timing is `scc-sim`'s job; this module stores the actual bytes. Memory
//! is organized in lazily-allocated 4 KB pages so a sparse 32-bit address
//! space costs nothing until touched.

use crate::value::{MemKind, Value};
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse byte-addressable memory.
#[derive(Debug, Clone, Default)]
pub struct ByteMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl ByteMemory {
    /// Creates an empty memory (all bytes read as zero).
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Reads `n <= 8` bytes little-endian. Accesses that stay within one
    /// page (the overwhelmingly common case: scalars are aligned and pages
    /// are 4 KB) take a single map lookup and slice copy; straddling
    /// accesses fall back to the byte loop.
    #[inline]
    fn read_le(&self, addr: u64, n: usize) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..n].copy_from_slice(&p[off..off + n]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut out = 0u64;
            for i in 0..n {
                out |= u64::from(self.read_u8(addr + i as u64)) << (8 * i);
            }
            out
        }
    }

    /// Writes `n <= 8` bytes little-endian (single-page fast path like
    /// [`ByteMemory::read_le`]).
    #[inline]
    fn write_le(&mut self, addr: u64, n: usize, v: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            let bytes = v.to_le_bytes();
            self.page_mut(addr)[off..off + n].copy_from_slice(&bytes[..n]);
        } else {
            for i in 0..n {
                self.write_u8(addr + i as u64, (v >> (8 * i)) as u8);
            }
        }
    }

    /// Loads a typed value.
    #[inline]
    pub fn load(&self, addr: u64, kind: MemKind) -> Value {
        match kind {
            MemKind::I8 => Value::I(self.read_le(addr, 1) as i8 as i64),
            MemKind::I16 => Value::I(self.read_le(addr, 2) as i16 as i64),
            MemKind::I32 => Value::I(self.read_le(addr, 4) as i32 as i64),
            MemKind::I64 => Value::I(self.read_le(addr, 8) as i64),
            MemKind::F32 => Value::F(f64::from(f32::from_bits(self.read_le(addr, 4) as u32))),
            MemKind::F64 => Value::F(f64::from_bits(self.read_le(addr, 8))),
        }
    }

    /// Stores a typed value.
    #[inline]
    pub fn store(&mut self, addr: u64, kind: MemKind, v: Value) {
        match kind {
            MemKind::I8 => self.write_le(addr, 1, v.as_i() as u64),
            MemKind::I16 => self.write_le(addr, 2, v.as_i() as u64),
            MemKind::I32 => self.write_le(addr, 4, v.as_i() as u64),
            MemKind::I64 => self.write_le(addr, 8, v.as_i() as u64),
            MemKind::F32 => self.write_le(addr, 4, u64::from((v.as_f() as f32).to_bits())),
            MemKind::F64 => self.write_le(addr, 8, v.as_f().to_bits()),
        }
    }

    /// Copies a byte slice in (program images, string tables), page-sized
    /// chunks at a time.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            self.page_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Reads a NUL-terminated C string (capped at 64 KB).
    pub fn read_cstr(&self, addr: u64) -> String {
        let mut out = Vec::new();
        for i in 0..65536 {
            let b = self.read_u8(addr + i);
            if b == 0 {
                break;
            }
            out.push(b);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Number of resident pages (test/diagnostic aid).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = ByteMemory::new();
        assert_eq!(m.load(0x1234, MemKind::I64), Value::I(0));
        assert_eq!(m.load(0x9999, MemKind::F64), Value::F(0.0));
    }

    #[test]
    fn round_trips_each_kind() {
        let mut m = ByteMemory::new();
        m.store(0x100, MemKind::I8, Value::I(-5));
        assert_eq!(m.load(0x100, MemKind::I8), Value::I(-5));
        m.store(0x200, MemKind::I16, Value::I(-30000));
        assert_eq!(m.load(0x200, MemKind::I16), Value::I(-30000));
        m.store(0x300, MemKind::I32, Value::I(-2_000_000_000));
        assert_eq!(m.load(0x300, MemKind::I32), Value::I(-2_000_000_000));
        m.store(0x400, MemKind::I64, Value::I(i64::MIN / 3));
        assert_eq!(m.load(0x400, MemKind::I64), Value::I(i64::MIN / 3));
        m.store(0x500, MemKind::F64, Value::F(std::f64::consts::PI));
        assert_eq!(m.load(0x500, MemKind::F64), Value::F(std::f64::consts::PI));
        m.store(0x600, MemKind::F32, Value::F(1.5));
        assert_eq!(m.load(0x600, MemKind::F32), Value::F(1.5));
    }

    #[test]
    fn i32_truncates_like_c() {
        let mut m = ByteMemory::new();
        m.store(0x100, MemKind::I32, Value::I(0x1_0000_0001));
        assert_eq!(m.load(0x100, MemKind::I32), Value::I(1));
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = ByteMemory::new();
        let addr = (PAGE_SIZE - 4) as u64;
        m.store(addr, MemKind::I64, Value::I(0x0102_0304_0506_0708));
        assert_eq!(m.load(addr, MemKind::I64), Value::I(0x0102_0304_0506_0708));
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn straddling_and_aligned_accesses_agree_with_byte_interface() {
        // Walk an 8-byte window across the page boundary: the single-page
        // fast path and the per-byte fallback must produce the same bytes.
        for delta in 0..16u64 {
            let addr = PAGE_SIZE as u64 - 8 + delta;
            let mut m = ByteMemory::new();
            m.store(addr, MemKind::I64, Value::I(0x0102_0304_0506_0708));
            assert_eq!(m.load(addr, MemKind::I64), Value::I(0x0102_0304_0506_0708));
            let mut got = 0u64;
            for i in 0..8 {
                got |= u64::from(m.read_u8(addr + i)) << (8 * i);
            }
            assert_eq!(got as i64, 0x0102_0304_0506_0708, "offset {delta}");
        }
    }

    #[test]
    fn cstr_round_trip() {
        let mut m = ByteMemory::new();
        m.write_bytes(0x100, b"Sum Array: %d\n\0");
        assert_eq!(m.read_cstr(0x100), "Sum Array: %d\n");
        assert_eq!(m.read_cstr(0x10_000), "");
    }

    #[test]
    fn adjacent_scalars_do_not_clobber() {
        let mut m = ByteMemory::new();
        m.store(0x100, MemKind::I32, Value::I(11));
        m.store(0x104, MemKind::I32, Value::I(22));
        assert_eq!(m.load(0x100, MemKind::I32), Value::I(11));
        assert_eq!(m.load(0x104, MemKind::I32), Value::I(22));
    }
}
