//! A versioned text codec for compiled [`Program`]s.
//!
//! The persistent artifact store (`hsm_core::store`) keeps compiled
//! bytecode on disk between processes, so the compile shelf of a warm
//! sweep can skip the CIR → bytecode compiler entirely. The format is a
//! line-oriented text dump chosen for three properties:
//!
//! * **Exact** — floats are written as `f64::to_bits` hex, so a decoded
//!   program is `==` to the encoded one (the round-trip tests pin this
//!   for every corpus program).
//! * **Versioned** — the `hsmvm <version>` header is checked on decode;
//!   a format bump turns every stale entry into a decode failure, which
//!   the store treats as a recompute-and-overwrite.
//! * **Dependency-free** — like the rest of the workspace it uses no
//!   serialization crate; the writer and reader are ~200 lines of std.

use crate::compile::{FrameVar, Function, GlobalVar, Program};
use crate::instr::{Instr, Intrinsic};
use crate::value::MemKind;
use hsm_cir::types::CType;
use std::fmt;
use std::fmt::Write as _;

/// Format version written in the header; bump on any layout change.
pub const SERIAL_VERSION: u32 = 1;

/// A decode failure (truncated, corrupted or stale-format input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialError {
    /// Human-readable description.
    pub message: String,
}

impl SerialError {
    fn new(msg: impl Into<String>) -> Self {
        SerialError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program decode error: {}", self.message)
    }
}

impl std::error::Error for SerialError {}

// ------------------------------------------------------------- encode --

/// Serializes a compiled program to the versioned text format.
pub fn serialize_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "hsmvm {SERIAL_VERSION}");
    let _ = writeln!(out, "entry {}", p.entry);
    let _ = writeln!(out, "funcs {}", p.funcs.len());
    for f in &p.funcs {
        let _ = writeln!(
            out,
            "func {} regs {} params {} frame {} ret {}",
            f.name,
            f.n_regs,
            f.n_params,
            f.frame_mem,
            ctype_text(&f.ret)
        );
        let _ = writeln!(out, "framevars {}", f.frame_vars.len());
        for v in &f.frame_vars {
            let _ = writeln!(out, "fv {} {} {}", v.offset, v.size, v.name);
        }
        let _ = writeln!(out, "code {}", f.code.len());
        for i in &f.code {
            let _ = writeln!(out, "{}", instr_text(*i));
        }
    }
    let _ = writeln!(out, "globals {}", p.globals.len());
    for g in &p.globals {
        let _ = writeln!(
            out,
            "global {} {} {} {}",
            g.addr,
            g.storage,
            ctype_text(&g.ty),
            g.name
        );
    }
    let _ = writeln!(out, "strings {}", p.strings.len());
    for (addr, s) in &p.strings {
        let _ = writeln!(out, "str {} {}", addr, escape(s));
    }
    let _ = writeln!(out, "image {}", p.image.len());
    for (addr, bytes) in &p.image {
        let mut hex = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            let _ = write!(hex, "{b:02x}");
        }
        let _ = writeln!(out, "blob {addr} {hex}");
    }
    out
}

fn instr_text(i: Instr) -> String {
    use Instr::*;
    match i {
        PushI(v) => format!("PushI {v}"),
        PushF(v) => format!("PushF {:016x}", v.to_bits()),
        LocalGet(s) => format!("LocalGet {s}"),
        LocalSet(s) => format!("LocalSet {s}"),
        LocalMemAddr(o) => format!("LocalMemAddr {o}"),
        Load(k) => format!("Load {}", kind_text(k)),
        Store(k, keep) => format!("Store {} {}", kind_text(k), u8::from(keep)),
        Jump(t) => format!("Jump {t}"),
        JumpIfZero(t) => format!("JumpIfZero {t}"),
        JumpIfNotZero(t) => format!("JumpIfNotZero {t}"),
        Call(f, n) => format!("Call {f} {n}"),
        CallIntrinsic(x, n) => format!("CallIntrinsic {} {n}", x.name()),
        // Every remaining variant is fieldless; its Debug name is stable.
        other => format!("{other:?}"),
    }
}

fn kind_text(k: MemKind) -> &'static str {
    match k {
        MemKind::I8 => "i8",
        MemKind::I16 => "i16",
        MemKind::I32 => "i32",
        MemKind::I64 => "i64",
        MemKind::F32 => "f32",
        MemKind::F64 => "f64",
    }
}

/// Space-free recursive spelling of a [`CType`], e.g.
/// `ptr(arr(int,8))` or `fn(void;ptr(void),int)`.
fn ctype_text(ty: &CType) -> String {
    match ty {
        CType::Void => "void".into(),
        CType::Char => "char".into(),
        CType::Short => "short".into(),
        CType::Int => "int".into(),
        CType::Long => "long".into(),
        CType::LongLong => "llong".into(),
        CType::UInt => "uint".into(),
        CType::ULong => "ulong".into(),
        CType::Float => "float".into(),
        CType::Double => "double".into(),
        CType::Named(n) => format!("named:{n}"),
        CType::Pointer(inner) => format!("ptr({})", ctype_text(inner)),
        CType::Array(inner, len) => match len {
            Some(n) => format!("arr({},{n})", ctype_text(inner)),
            None => format!("arr({},_)", ctype_text(inner)),
        },
        CType::Function { ret, params } => {
            let params: Vec<String> = params.iter().map(ctype_text).collect();
            format!("fn({};{})", ctype_text(ret), params.join(","))
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

// ------------------------------------------------------------- decode --

/// Parses the text format back into a [`Program`].
///
/// # Errors
///
/// Returns a [`SerialError`] on any malformed, truncated or
/// version-mismatched input — the store maps that to "corrupt entry,
/// recompute".
pub fn parse_program(text: &str) -> Result<Program, SerialError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| SerialError::new("empty input"))?;
    match header.strip_prefix("hsmvm ") {
        Some(v) if v == SERIAL_VERSION.to_string() => {}
        Some(v) => {
            return Err(SerialError::new(format!(
                "format version {v}, expected {SERIAL_VERSION}"
            )))
        }
        None => return Err(SerialError::new("missing hsmvm header")),
    }
    let entry = field(lines.next(), "entry")?.parse::<u32>().map_err(bad)?;
    let n_funcs = field(lines.next(), "funcs")?
        .parse::<usize>()
        .map_err(bad)?;
    let mut funcs = Vec::with_capacity(n_funcs);
    for _ in 0..n_funcs {
        funcs.push(parse_func(&mut lines)?);
    }
    let n_globals = field(lines.next(), "globals")?
        .parse::<usize>()
        .map_err(bad)?;
    let mut globals = Vec::with_capacity(n_globals);
    for _ in 0..n_globals {
        let rest = field(lines.next(), "global")?;
        let mut parts = rest.splitn(4, ' ');
        let addr = next_tok(&mut parts, "global addr")?
            .parse::<u64>()
            .map_err(bad)?;
        let storage = next_tok(&mut parts, "global storage")?
            .parse::<usize>()
            .map_err(bad)?;
        let ty = parse_ctype(next_tok(&mut parts, "global type")?)?;
        let name = next_tok(&mut parts, "global name")?.to_string();
        globals.push(GlobalVar {
            name,
            ty,
            addr,
            storage,
        });
    }
    let n_strings = field(lines.next(), "strings")?
        .parse::<usize>()
        .map_err(bad)?;
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let rest = field(lines.next(), "str")?;
        let (addr, s) = rest
            .split_once(' ')
            .ok_or_else(|| SerialError::new("malformed str line"))?;
        strings.push((addr.parse::<u64>().map_err(bad)?, unescape(s)?));
    }
    let n_blobs = field(lines.next(), "image")?
        .parse::<usize>()
        .map_err(bad)?;
    let mut image = Vec::with_capacity(n_blobs);
    for _ in 0..n_blobs {
        let rest = field(lines.next(), "blob")?;
        let (addr, hex) = rest.split_once(' ').unwrap_or((rest, ""));
        if hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(SerialError::new("malformed blob hex"));
        }
        let bytes = hex
            .as_bytes()
            .chunks(2)
            .map(|pair| {
                let s = std::str::from_utf8(pair).expect("hex ascii");
                u8::from_str_radix(s, 16).expect("validated hex")
            })
            .collect();
        image.push((addr.parse::<u64>().map_err(bad)?, bytes));
    }
    if lines.next().is_some() {
        return Err(SerialError::new("trailing lines after image section"));
    }
    let program = Program {
        funcs,
        globals,
        strings,
        image,
        entry,
    };
    if program.entry as usize >= program.funcs.len() {
        return Err(SerialError::new("entry index out of range"));
    }
    Ok(program)
}

fn parse_func<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<Function, SerialError> {
    let rest = field(lines.next(), "func")?;
    // `<name> regs <r> params <p> frame <f> ret <type>` — 9 tokens.
    let toks: Vec<&str> = rest.split(' ').collect();
    if toks.len() != 9
        || toks[1] != "regs"
        || toks[3] != "params"
        || toks[5] != "frame"
        || toks[7] != "ret"
    {
        return Err(SerialError::new(format!("malformed func line `{rest}`")));
    }
    let name = toks[0].to_string();
    let n_regs = toks[2].parse::<u16>().map_err(bad)?;
    let n_params = toks[4].parse::<u8>().map_err(bad)?;
    let frame_mem = toks[6].parse::<u32>().map_err(bad)?;
    let ret = parse_ctype(toks[8])?;
    let n_vars = field(lines.next(), "framevars")?
        .parse::<usize>()
        .map_err(bad)?;
    let mut frame_vars = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        let rest = field(lines.next(), "fv")?;
        let mut parts = rest.splitn(3, ' ');
        let offset = next_tok(&mut parts, "fv offset")?
            .parse::<u32>()
            .map_err(bad)?;
        let size = next_tok(&mut parts, "fv size")?
            .parse::<u32>()
            .map_err(bad)?;
        let name = next_tok(&mut parts, "fv name")?.to_string();
        frame_vars.push(FrameVar { name, offset, size });
    }
    let n_code = field(lines.next(), "code")?.parse::<usize>().map_err(bad)?;
    let mut code = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        let line = lines
            .next()
            .ok_or_else(|| SerialError::new("truncated code section"))?;
        code.push(parse_instr(line)?);
    }
    Ok(Function {
        name,
        code,
        n_regs,
        n_params,
        frame_mem,
        ret,
        frame_vars,
    })
}

fn parse_instr(line: &str) -> Result<Instr, SerialError> {
    use Instr::*;
    let mut parts = line.split(' ');
    let op = parts.next().unwrap_or("");
    let mut arg = |what: &str| next_tok(&mut parts, what);
    let instr = match op {
        "PushI" => PushI(arg("PushI value")?.parse::<i64>().map_err(bad)?),
        "PushF" => PushF(f64::from_bits(
            u64::from_str_radix(arg("PushF bits")?, 16).map_err(bad)?,
        )),
        "LocalGet" => LocalGet(arg("slot")?.parse::<u16>().map_err(bad)?),
        "LocalSet" => LocalSet(arg("slot")?.parse::<u16>().map_err(bad)?),
        "LocalMemAddr" => LocalMemAddr(arg("offset")?.parse::<u32>().map_err(bad)?),
        "Load" => Load(parse_kind(arg("kind")?)?),
        "Store" => {
            let kind = parse_kind(arg("kind")?)?;
            let keep = match arg("keep")? {
                "0" => false,
                "1" => true,
                other => return Err(SerialError::new(format!("bad Store keep `{other}`"))),
            };
            Store(kind, keep)
        }
        "Jump" => Jump(arg("target")?.parse::<u32>().map_err(bad)?),
        "JumpIfZero" => JumpIfZero(arg("target")?.parse::<u32>().map_err(bad)?),
        "JumpIfNotZero" => JumpIfNotZero(arg("target")?.parse::<u32>().map_err(bad)?),
        "Call" => {
            let f = arg("func index")?.parse::<u32>().map_err(bad)?;
            let n = arg("nargs")?.parse::<u8>().map_err(bad)?;
            Call(f, n)
        }
        "CallIntrinsic" => {
            let name = arg("intrinsic name")?;
            let x = Intrinsic::from_name(name)
                .ok_or_else(|| SerialError::new(format!("unknown intrinsic `{name}`")))?;
            let n = arg("nargs")?.parse::<u8>().map_err(bad)?;
            CallIntrinsic(x, n)
        }
        "Dup" => Dup,
        "Pop" => Pop,
        "Swap" => Swap,
        "Rot3" => Rot3,
        "Add" => Add,
        "Sub" => Sub,
        "Mul" => Mul,
        "Div" => Div,
        "Rem" => Rem,
        "Shl" => Shl,
        "Shr" => Shr,
        "BitAnd" => BitAnd,
        "BitOr" => BitOr,
        "BitXor" => BitXor,
        "Neg" => Neg,
        "Not" => Not,
        "BitNot" => BitNot,
        "CmpLt" => CmpLt,
        "CmpLe" => CmpLe,
        "CmpGt" => CmpGt,
        "CmpGe" => CmpGe,
        "CmpEq" => CmpEq,
        "CmpNe" => CmpNe,
        "I2F" => I2F,
        "F2I" => F2I,
        "Ret" => Ret,
        "RetVoid" => RetVoid,
        "Nop" => Nop,
        other => return Err(SerialError::new(format!("unknown opcode `{other}`"))),
    };
    if parts.next().is_some() {
        return Err(SerialError::new(format!("trailing operands in `{line}`")));
    }
    Ok(instr)
}

fn parse_kind(s: &str) -> Result<MemKind, SerialError> {
    Ok(match s {
        "i8" => MemKind::I8,
        "i16" => MemKind::I16,
        "i32" => MemKind::I32,
        "i64" => MemKind::I64,
        "f32" => MemKind::F32,
        "f64" => MemKind::F64,
        other => return Err(SerialError::new(format!("unknown mem kind `{other}`"))),
    })
}

fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, SerialError> {
    let line = line.ok_or_else(|| SerialError::new(format!("missing {key} line")))?;
    line.strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| SerialError::new(format!("expected `{key} ...`, got `{line}`")))
}

fn next_tok<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<&'a str, SerialError> {
    parts
        .next()
        .ok_or_else(|| SerialError::new(format!("missing {what}")))
}

fn bad(e: impl fmt::Display) -> SerialError {
    SerialError::new(format!("malformed number: {e}"))
}

fn unescape(s: &str) -> Result<String, SerialError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err(SerialError::new("bad escape in string")),
        }
    }
    Ok(out)
}

fn parse_ctype(s: &str) -> Result<CType, SerialError> {
    let (ty, rest) = parse_ctype_prefix(s)?;
    if !rest.is_empty() {
        return Err(SerialError::new(format!("trailing type text `{rest}`")));
    }
    Ok(ty)
}

/// Parses one type from the front of `s`, returning the remainder.
fn parse_ctype_prefix(s: &str) -> Result<(CType, &str), SerialError> {
    for (word, ty) in [
        ("void", CType::Void),
        ("char", CType::Char),
        ("short", CType::Short),
        ("int", CType::Int),
        ("llong", CType::LongLong),
        ("long", CType::Long),
        ("uint", CType::UInt),
        ("ulong", CType::ULong),
        ("float", CType::Float),
        ("double", CType::Double),
    ] {
        if let Some(rest) = s.strip_prefix(word) {
            // `long` must not swallow the prefix of nothing else; the
            // delimiter set below keeps `llong` ahead of `long`.
            if rest.is_empty() || rest.starts_with([',', ')', ';']) {
                return Ok((ty, rest));
            }
        }
    }
    if let Some(rest) = s.strip_prefix("named:") {
        let end = rest.find([',', ')', ';']).unwrap_or(rest.len());
        return Ok((CType::Named(rest[..end].to_string()), &rest[end..]));
    }
    if let Some(rest) = s.strip_prefix("ptr(") {
        let (inner, rest) = parse_ctype_prefix(rest)?;
        let rest = rest
            .strip_prefix(')')
            .ok_or_else(|| SerialError::new("unclosed ptr("))?;
        return Ok((CType::Pointer(Box::new(inner)), rest));
    }
    if let Some(rest) = s.strip_prefix("arr(") {
        let (inner, rest) = parse_ctype_prefix(rest)?;
        let rest = rest
            .strip_prefix(',')
            .ok_or_else(|| SerialError::new("malformed arr("))?;
        let end = rest
            .find(')')
            .ok_or_else(|| SerialError::new("unclosed arr("))?;
        let len = match &rest[..end] {
            "_" => None,
            n => Some(n.parse::<usize>().map_err(bad)?),
        };
        return Ok((CType::Array(Box::new(inner), len), &rest[end + 1..]));
    }
    if let Some(rest) = s.strip_prefix("fn(") {
        let (ret, rest) = parse_ctype_prefix(rest)?;
        let mut rest = rest
            .strip_prefix(';')
            .ok_or_else(|| SerialError::new("malformed fn("))?;
        let mut params = Vec::new();
        if let Some(after) = rest.strip_prefix(')') {
            return Ok((
                CType::Function {
                    ret: Box::new(ret),
                    params,
                },
                after,
            ));
        }
        loop {
            let (p, r) = parse_ctype_prefix(rest)?;
            params.push(p);
            if let Some(after) = r.strip_prefix(',') {
                rest = after;
            } else if let Some(after) = r.strip_prefix(')') {
                return Ok((
                    CType::Function {
                        ret: Box::new(ret),
                        params,
                    },
                    after,
                ));
            } else {
                return Err(SerialError::new("unclosed fn("));
            }
        }
    }
    Err(SerialError::new(format!("unknown type spelling `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    fn round_trip(src: &str) -> (Program, Program) {
        let tu = hsm_cir::parse(src).expect("parses");
        let program = compile(&tu).expect("compiles");
        let text = serialize_program(&program);
        let decoded = parse_program(&text).expect("decodes");
        (program, decoded)
    }

    #[test]
    fn round_trips_a_scalar_program() {
        let (original, decoded) = round_trip(
            "int main() { int s = 0; int i; for (i = 1; i <= 4; i++) s += i; return s; }",
        );
        assert_eq!(original, decoded);
    }

    #[test]
    fn round_trips_floats_exactly() {
        let (original, decoded) = round_trip(
            r#"
double acc;
int main() {
    acc = 0.1;
    acc = acc + 3.14159265358979;
    printf("%f\n", acc);
    return 0;
}
"#,
        );
        assert_eq!(original, decoded);
        assert!(
            serialize_program(&original).contains("PushF"),
            "float constants are present"
        );
    }

    #[test]
    fn round_trips_threads_arrays_and_strings() {
        let (original, decoded) = round_trip(
            r#"
int sum[4];
int seeds[4] = {3, 1, 4, 1};
void *tf(void *tid) { sum[(int)tid] = seeds[(int)tid] + 1; return tid; }
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    printf("tab\there\n%d\n", sum[0] + sum[1] + sum[2] + sum[3]);
    return sum[3];
}
"#,
        );
        assert_eq!(original, decoded);
        assert!(!original.image.is_empty(), "string image present");
    }

    #[test]
    fn rejects_stale_versions_and_corruption() {
        let (original, _) = round_trip("int main() { return 2; }");
        let text = serialize_program(&original);
        let stale = text.replacen("hsmvm 1", "hsmvm 999", 1);
        assert!(parse_program(&stale).is_err(), "version mismatch rejected");
        assert!(parse_program("").is_err());
        assert!(parse_program("garbage\n").is_err());
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(parse_program(&truncated).is_err());
    }

    #[test]
    fn ctype_codec_round_trips_nested_types() {
        let types = [
            CType::Void,
            CType::LongLong,
            CType::Long,
            CType::Named("pthread_t".into()),
            CType::Pointer(Box::new(CType::Array(Box::new(CType::Int), Some(8)))),
            CType::Array(Box::new(CType::Pointer(Box::new(CType::Char))), None),
            CType::Function {
                ret: Box::new(CType::Pointer(Box::new(CType::Void))),
                params: vec![CType::Pointer(Box::new(CType::Void)), CType::Int],
            },
            CType::Function {
                ret: Box::new(CType::Void),
                params: vec![],
            },
        ];
        for ty in types {
            let text = ctype_text(&ty);
            assert_eq!(parse_ctype(&text).expect("parses"), ty, "spelling `{text}`");
        }
    }

    #[test]
    fn intrinsic_names_invert_from_name() {
        // Spot-check the two spellings that differ from the variant name.
        assert_eq!(
            Intrinsic::from_name(Intrinsic::RcceMpbMalloc.name()),
            Some(Intrinsic::RcceMpbMalloc)
        );
        assert_eq!(
            Intrinsic::from_name(Intrinsic::MutexLock.name()),
            Some(Intrinsic::MutexLock)
        );
    }
}
