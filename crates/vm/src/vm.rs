//! The suspendable stack-machine VM.
//!
//! A [`Vm`] executes one simulated hardware thread (a pthread, or one
//! RCCE UE). It never touches memory or the outside world itself: every
//! load, store and library call is surfaced as a [`StepOutcome`] for the
//! discrete-event engine to resolve against the simulated SCC, after which
//! the engine resumes the VM with the result. That hand-off is what lets
//! 48 cores interleave deterministically at instruction granularity.

use crate::compile::{Program, STACK_SIZE};
use crate::instr::{Instr, Intrinsic};
use crate::value::{MemKind, Value};
use std::fmt;

/// A VM runtime fault (all indicate compiler or engine bugs, not user
/// program errors — the compiler rejects invalid programs).
#[derive(Debug, Clone, PartialEq)]
pub struct VmError {
    /// Description.
    pub message: String,
}

impl VmError {
    fn new(m: impl Into<String>) -> Self {
        VmError { message: m.into() }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm fault: {}", self.message)
    }
}

impl std::error::Error for VmError {}

/// What the VM needs from the engine before it can continue.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Plain instructions ran for `cycles`.
    Ran {
        /// Core cycles consumed.
        cycles: u64,
    },
    /// A load was issued: the engine must resolve data + latency, then
    /// call [`Vm::provide_load`].
    Load {
        /// Effective address.
        addr: u64,
        /// Access kind.
        kind: MemKind,
        /// Issue cycles already consumed (add memory latency on top).
        cycles: u64,
    },
    /// A store was issued: the engine performs it, then calls
    /// [`Vm::store_done`].
    Store {
        /// Effective address.
        addr: u64,
        /// Access kind.
        kind: MemKind,
        /// Value to store.
        value: Value,
        /// Issue cycles already consumed.
        cycles: u64,
    },
    /// A library call the engine must service; resume with
    /// [`Vm::syscall_return`].
    Syscall {
        /// Which intrinsic.
        intrinsic: Intrinsic,
        /// Arguments, left to right.
        args: Vec<Value>,
        /// Issue cycles already consumed.
        cycles: u64,
    },
    /// The entry function returned.
    Finished {
        /// Its return value.
        exit: Value,
    },
}

/// One call record. Registers live in the [`Vm`]'s flat arena (`regs`);
/// a frame owns the suffix starting at `reg_base`, so calls never allocate
/// and returns are a truncate. `pc` is only authoritative while the frame
/// is *not* the running one: the interpreter caches the top frame's state
/// in [`Hot`] and writes `pc` back at calls and suspension points.
#[derive(Debug, Clone)]
struct Frame {
    func: u32,
    pc: u32,
    reg_base: usize,
    mem_base: u64,
    mem_size: u32,
}

#[derive(Debug, Clone, PartialEq)]
enum Pending {
    Load { keep_float: bool },
    Store { repush: Option<Value> },
    Syscall,
}

/// One suspendable execution context.
#[derive(Debug, Clone)]
pub struct Vm {
    stack: Vec<Value>,
    frames: Vec<Frame>,
    /// Flat register arena: frame `i` owns `regs[frames[i].reg_base..]` up
    /// to the next frame's base.
    regs: Vec<Value>,
    pending: Option<Pending>,
    mem_sp: u64,
    stack_region_base: u64,
    finished: Option<Value>,
    retired: u64,
}

impl Vm {
    /// Creates a VM poised at `func` with `args`, using the private stack
    /// region starting at `stack_region_base`.
    pub fn new(program: &Program, func: u32, args: Vec<Value>, stack_region_base: u64) -> Self {
        let f = &program.funcs[func as usize];
        let mut regs = vec![Value::I(0); f.n_regs as usize];
        for (i, a) in args.into_iter().enumerate().take(f.n_regs as usize) {
            regs[i] = a;
        }
        let frame = Frame {
            func,
            pc: 0,
            reg_base: 0,
            mem_base: stack_region_base,
            mem_size: f.frame_mem,
        };
        Vm {
            stack: Vec::with_capacity(32),
            frames: vec![frame],
            regs,
            pending: None,
            mem_sp: u64::from(f.frame_mem),
            stack_region_base,
            finished: None,
            retired: 0,
        }
    }

    /// Total bytecode instructions retired since construction. This is a
    /// host-performance denominator (steps/sec); it plays no role in the
    /// simulated timing model.
    pub fn instructions_retired(&self) -> u64 {
        self.retired
    }

    /// Whether the entry function has returned.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The exit value once finished.
    pub fn exit_value(&self) -> Option<Value> {
        self.finished
    }

    /// Current call depth (diagnostics).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn pop(&mut self) -> Result<Value, VmError> {
        self.stack
            .pop()
            .ok_or_else(|| VmError::new("value stack underflow"))
    }

    /// Completes a pending load.
    ///
    /// # Panics
    ///
    /// Panics if no load is pending.
    pub fn provide_load(&mut self, v: Value) {
        match self.pending.take() {
            Some(Pending::Load { .. }) => self.stack.push(v),
            other => panic!("provide_load without pending load: {other:?}"),
        }
    }

    /// Completes a pending store.
    ///
    /// # Panics
    ///
    /// Panics if no store is pending.
    pub fn store_done(&mut self) {
        match self.pending.take() {
            Some(Pending::Store { repush }) => {
                if let Some(v) = repush {
                    self.stack.push(v);
                }
            }
            other => panic!("store_done without pending store: {other:?}"),
        }
    }

    /// Completes a pending syscall, pushing its return value.
    ///
    /// # Panics
    ///
    /// Panics if no syscall is pending.
    pub fn syscall_return(&mut self, v: Value) {
        match self.pending.take() {
            Some(Pending::Syscall) => self.stack.push(v),
            other => panic!("syscall_return without pending syscall: {other:?}"),
        }
    }

    /// Runs instructions until something needs the engine (memory access,
    /// syscall, or completion), accumulating plain-instruction cycles into
    /// the returned outcome. Instructions dispatch through the jump table
    /// indexed by [`crate::instr::Op`].
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on stack underflow or malformed bytecode —
    /// both indicate internal bugs.
    pub fn run_until_event(&mut self, program: &Program) -> Result<StepOutcome, VmError> {
        self.run_loop(program, dispatch_table)
    }

    /// [`Vm::run_until_event`] resolved through an explicit structural
    /// `match` on [`Instr`] instead of the jump table — the pre-table
    /// dispatch shape, kept as the reference arm of the differential
    /// dispatch test (`tests/dispatch.rs`). Behaviour must be identical.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on stack underflow or malformed bytecode.
    pub fn run_until_event_matched(&mut self, program: &Program) -> Result<StepOutcome, VmError> {
        self.run_loop(program, dispatch_matched)
    }

    /// The shared fetch/decode loop: caches the top frame's state in a
    /// [`Hot`] so the per-instruction path never re-derives it, and defers
    /// per-opcode semantics to `step` (table- or match-resolved; both
    /// monomorphize, so the production build pays no indirection beyond
    /// the table load itself).
    #[inline(always)]
    fn run_loop<'p, F>(&mut self, program: &'p Program, step: F) -> Result<StepOutcome, VmError>
    where
        F: Fn(&mut Vm, &mut Hot<'p>, &'p Program, Instr) -> Result<Ctl, VmError>,
    {
        assert!(
            self.pending.is_none(),
            "resuming a VM with an unresolved pending operation"
        );
        if let Some(exit) = self.finished {
            return Ok(StepOutcome::Finished { exit });
        }
        let mut hot = {
            let frame = self
                .frames
                .last()
                .ok_or_else(|| VmError::new("no active frame"))?;
            Hot::of(program, frame)
        };
        loop {
            let Some(&instr) = hot.code.get(hot.pc as usize) else {
                let func = &program.funcs[self.frames.last().expect("frame").func as usize];
                self.sync_pc(&hot);
                return Err(VmError::new(format!(
                    "pc {} out of bounds in `{}`",
                    hot.pc, func.name
                )));
            };
            hot.pc += 1;
            hot.cycles += instr.base_cost();
            self.retired += 1;

            match step(self, &mut hot, program, instr) {
                Ok(Ctl::Next) => {}
                Ok(Ctl::Event(out)) => return Ok(out),
                Err(e) => {
                    self.sync_pc(&hot);
                    return Err(e);
                }
            }
            // Safety valve: surface control periodically so the engine can
            // interleave cores even through long register-only stretches.
            if hot.cycles >= 4096 {
                self.sync_pc(&hot);
                return Ok(StepOutcome::Ran { cycles: hot.cycles });
            }
        }
    }

    /// Writes the cached program counter back into the top frame (at
    /// suspension points and on faults).
    fn sync_pc(&mut self, hot: &Hot<'_>) {
        if let Some(f) = self.frames.last_mut() {
            f.pc = hot.pc;
        }
    }
}

/// Cached execution state of the topmost frame, held in locals across the
/// fetch/decode loop so the per-instruction path touches no `Vec` lookups.
/// `cycles` accumulates across frame switches within one engine slice;
/// everything else is refreshed by [`Hot::switch_frame`] on call/return.
struct Hot<'p> {
    code: &'p [Instr],
    pc: u32,
    reg_base: usize,
    reg_len: usize,
    mem_base: u64,
    cycles: u64,
}

impl<'p> Hot<'p> {
    fn of(program: &'p Program, frame: &Frame) -> Hot<'p> {
        let f = &program.funcs[frame.func as usize];
        Hot {
            code: &f.code,
            pc: frame.pc,
            reg_base: frame.reg_base,
            reg_len: f.n_regs as usize,
            mem_base: frame.mem_base,
            cycles: 0,
        }
    }

    /// Re-targets the cache at `frame` (after a call or return), keeping
    /// the accumulated cycle count.
    fn switch_frame(&mut self, program: &'p Program, frame: &Frame) {
        let f = &program.funcs[frame.func as usize];
        self.code = &f.code;
        self.pc = frame.pc;
        self.reg_base = frame.reg_base;
        self.reg_len = f.n_regs as usize;
        self.mem_base = frame.mem_base;
    }
}

/// What an opcode handler tells the fetch loop.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Suspend (or finish): hand `StepOutcome` to the engine.
    Event(StepOutcome),
}

/// One opcode's semantics. Handlers trust that `instr`'s payload matches
/// the opcode they are registered for; [`DISPATCH`] and `Instr::op` keep
/// that true, and `tests/dispatch.rs` proves it differentially.
type Handler = for<'p> fn(&mut Vm, &mut Hot<'p>, &'p Program, Instr) -> Result<Ctl, VmError>;

/// The jump table: direct-threaded-style dispatch, indexed by
/// [`crate::instr::Op`] discriminant. Entries appear in `Op` order; the
/// array length is checked against [`Op::COUNT`] at compile time, so a new
/// opcode without a table entry fails the build.
static DISPATCH: [Handler; crate::instr::Op::COUNT] = [
    op_push_i,          // Op::PushI
    op_push_f,          // Op::PushF
    op_local_get,       // Op::LocalGet
    op_local_set,       // Op::LocalSet
    op_local_mem_addr,  // Op::LocalMemAddr
    op_load,            // Op::Load
    op_store,           // Op::Store
    op_dup,             // Op::Dup
    op_pop,             // Op::Pop
    op_swap,            // Op::Swap
    op_rot3,            // Op::Rot3
    op_arith,           // Op::Add
    op_arith,           // Op::Sub
    op_arith,           // Op::Mul
    op_arith,           // Op::Div
    op_arith,           // Op::Rem
    op_bitop,           // Op::Shl
    op_bitop,           // Op::Shr
    op_bitop,           // Op::BitAnd
    op_bitop,           // Op::BitOr
    op_bitop,           // Op::BitXor
    op_neg,             // Op::Neg
    op_not,             // Op::Not
    op_bitnot,          // Op::BitNot
    op_compare,         // Op::CmpLt
    op_compare,         // Op::CmpLe
    op_compare,         // Op::CmpGt
    op_compare,         // Op::CmpGe
    op_compare,         // Op::CmpEq
    op_compare,         // Op::CmpNe
    op_i2f,             // Op::I2F
    op_f2i,             // Op::F2I
    op_jump,            // Op::Jump
    op_jump_if_zero,    // Op::JumpIfZero
    op_jump_if_nonzero, // Op::JumpIfNotZero
    op_call,            // Op::Call
    op_call_intrinsic,  // Op::CallIntrinsic
    op_ret,             // Op::Ret
    op_ret,             // Op::RetVoid
    op_nop,             // Op::Nop
];

/// Production dispatch: one table load, one indirect call.
#[inline(always)]
fn dispatch_table<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    program: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    DISPATCH[instr.op() as usize](vm, hot, program, instr)
}

/// Reference dispatch: structural match on [`Instr`] (the pre-jump-table
/// shape). Resolves to the same handlers without going through `Instr::op`
/// or the table, so a differential run catches a mis-mapped opcode or a
/// mis-ordered table entry.
fn dispatch_matched<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    program: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    match instr {
        Instr::PushI(_) => op_push_i(vm, hot, program, instr),
        Instr::PushF(_) => op_push_f(vm, hot, program, instr),
        Instr::LocalGet(_) => op_local_get(vm, hot, program, instr),
        Instr::LocalSet(_) => op_local_set(vm, hot, program, instr),
        Instr::LocalMemAddr(_) => op_local_mem_addr(vm, hot, program, instr),
        Instr::Load(_) => op_load(vm, hot, program, instr),
        Instr::Store(..) => op_store(vm, hot, program, instr),
        Instr::Dup => op_dup(vm, hot, program, instr),
        Instr::Pop => op_pop(vm, hot, program, instr),
        Instr::Swap => op_swap(vm, hot, program, instr),
        Instr::Rot3 => op_rot3(vm, hot, program, instr),
        Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem => {
            op_arith(vm, hot, program, instr)
        }
        Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => {
            op_bitop(vm, hot, program, instr)
        }
        Instr::Neg => op_neg(vm, hot, program, instr),
        Instr::Not => op_not(vm, hot, program, instr),
        Instr::BitNot => op_bitnot(vm, hot, program, instr),
        Instr::CmpLt | Instr::CmpLe | Instr::CmpGt | Instr::CmpGe | Instr::CmpEq | Instr::CmpNe => {
            op_compare(vm, hot, program, instr)
        }
        Instr::I2F => op_i2f(vm, hot, program, instr),
        Instr::F2I => op_f2i(vm, hot, program, instr),
        Instr::Jump(_) => op_jump(vm, hot, program, instr),
        Instr::JumpIfZero(_) => op_jump_if_zero(vm, hot, program, instr),
        Instr::JumpIfNotZero(_) => op_jump_if_nonzero(vm, hot, program, instr),
        Instr::Call(..) => op_call(vm, hot, program, instr),
        Instr::CallIntrinsic(..) => op_call_intrinsic(vm, hot, program, instr),
        Instr::Ret | Instr::RetVoid => op_ret(vm, hot, program, instr),
        Instr::Nop => op_nop(vm, hot, program, instr),
    }
}

fn op_push_i<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::PushI(v) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    vm.stack.push(Value::I(v));
    Ok(Ctl::Next)
}

fn op_push_f<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::PushF(v) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    vm.stack.push(Value::F(v));
    Ok(Ctl::Next)
}

fn op_local_get<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::LocalGet(slot) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    if slot as usize >= hot.reg_len {
        return Err(VmError::new("register slot out of range"));
    }
    let v = vm.regs[hot.reg_base + slot as usize];
    vm.stack.push(v);
    Ok(Ctl::Next)
}

fn op_local_set<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::LocalSet(slot) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let v = vm.pop()?;
    if slot as usize >= hot.reg_len {
        return Err(VmError::new("register slot out of range"));
    }
    vm.regs[hot.reg_base + slot as usize] = v;
    Ok(Ctl::Next)
}

fn op_local_mem_addr<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::LocalMemAddr(off) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    vm.stack
        .push(Value::I((hot.mem_base + u64::from(off)) as i64));
    Ok(Ctl::Next)
}

fn op_load<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::Load(kind) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let addr = vm.pop()?.as_addr();
    vm.pending = Some(Pending::Load {
        keep_float: kind.is_float(),
    });
    vm.sync_pc(hot);
    Ok(Ctl::Event(StepOutcome::Load {
        addr,
        kind,
        cycles: hot.cycles,
    }))
}

fn op_store<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::Store(kind, keep) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let value = vm.pop()?;
    let addr = vm.pop()?.as_addr();
    vm.pending = Some(Pending::Store {
        repush: keep.then_some(value),
    });
    vm.sync_pc(hot);
    Ok(Ctl::Event(StepOutcome::Store {
        addr,
        kind,
        value,
        cycles: hot.cycles,
    }))
}

fn op_dup<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let v = *vm
        .stack
        .last()
        .ok_or_else(|| VmError::new("dup on empty stack"))?;
    vm.stack.push(v);
    Ok(Ctl::Next)
}

fn op_pop<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    vm.pop()?;
    Ok(Ctl::Next)
}

fn op_swap<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let b = vm.pop()?;
    let a = vm.pop()?;
    vm.stack.push(b);
    vm.stack.push(a);
    Ok(Ctl::Next)
}

fn op_rot3<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let c = vm.pop()?;
    let b = vm.pop()?;
    let a = vm.pop()?;
    vm.stack.push(b);
    vm.stack.push(c);
    vm.stack.push(a);
    Ok(Ctl::Next)
}

fn op_arith<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let r = vm.pop()?;
    let l = vm.pop()?;
    vm.stack.push(arith(instr, l, r)?);
    Ok(Ctl::Next)
}

fn op_bitop<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let r = vm.pop()?.as_i();
    let l = vm.pop()?.as_i();
    let v = match instr {
        Instr::Shl => l.wrapping_shl(r as u32),
        Instr::Shr => l.wrapping_shr(r as u32),
        Instr::BitAnd => l & r,
        Instr::BitOr => l | r,
        Instr::BitXor => l ^ r,
        _ => unreachable!("dispatch mismatch: {instr:?}"),
    };
    vm.stack.push(Value::I(v));
    Ok(Ctl::Next)
}

fn op_neg<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let v = vm.pop()?;
    vm.stack.push(match v {
        Value::I(i) => Value::I(i.wrapping_neg()),
        Value::F(f) => Value::F(-f),
    });
    Ok(Ctl::Next)
}

fn op_not<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let v = vm.pop()?;
    vm.stack.push(Value::I(i64::from(!v.is_truthy())));
    Ok(Ctl::Next)
}

fn op_bitnot<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let v = vm.pop()?.as_i();
    vm.stack.push(Value::I(!v));
    Ok(Ctl::Next)
}

fn op_compare<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let r = vm.pop()?;
    let l = vm.pop()?;
    vm.stack.push(compare(instr, l, r));
    Ok(Ctl::Next)
}

fn op_i2f<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let v = vm.pop()?;
    vm.stack.push(Value::F(v.as_f()));
    Ok(Ctl::Next)
}

fn op_f2i<'p>(
    vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    let v = vm.pop()?;
    vm.stack.push(Value::I(v.as_i()));
    Ok(Ctl::Next)
}

fn op_jump<'p>(
    _vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::Jump(t) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    hot.pc = t;
    Ok(Ctl::Next)
}

fn op_jump_if_zero<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::JumpIfZero(t) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let v = vm.pop()?;
    if !v.is_truthy() {
        hot.pc = t;
    }
    Ok(Ctl::Next)
}

fn op_jump_if_nonzero<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::JumpIfNotZero(t) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let v = vm.pop()?;
    if v.is_truthy() {
        hot.pc = t;
    }
    Ok(Ctl::Next)
}

fn op_call<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    program: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::Call(idx, nargs) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let callee = program
        .funcs
        .get(idx as usize)
        .ok_or_else(|| VmError::new("call target out of range"))?;
    let reg_base = vm.regs.len();
    let n_regs = callee.n_regs as usize;
    vm.regs.resize(reg_base + n_regs, Value::I(0));
    for i in (0..nargs as usize).rev() {
        let v = match vm.pop() {
            Ok(v) => v,
            Err(e) => {
                vm.regs.truncate(reg_base);
                return Err(e);
            }
        };
        if i < n_regs {
            vm.regs[reg_base + i] = v;
        }
    }
    if vm.mem_sp + u64::from(callee.frame_mem) > STACK_SIZE {
        vm.regs.truncate(reg_base);
        return Err(VmError::new(format!(
            "simulated stack overflow calling `{}`",
            callee.name
        )));
    }
    vm.sync_pc(hot);
    let frame = Frame {
        func: idx,
        pc: 0,
        reg_base,
        mem_base: vm.stack_region_base + vm.mem_sp,
        mem_size: callee.frame_mem,
    };
    vm.mem_sp += u64::from(callee.frame_mem);
    vm.frames.push(frame);
    hot.switch_frame(program, vm.frames.last().expect("frame"));
    Ok(Ctl::Next)
}

fn op_call_intrinsic<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    _p: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let Instr::CallIntrinsic(intr, nargs) = instr else {
        unreachable!("dispatch mismatch: {instr:?}")
    };
    let mut args = Vec::with_capacity(nargs as usize);
    for _ in 0..nargs {
        args.push(vm.pop()?);
    }
    args.reverse();
    if intr.is_pure() {
        let v = match intr {
            Intrinsic::Sqrt => Value::F(args[0].as_f().sqrt()),
            Intrinsic::Fabs => Value::F(args[0].as_f().abs()),
            _ => unreachable!("only math intrinsics are pure"),
        };
        vm.stack.push(v);
        hot.cycles += 30; // FP unit latency for sqrt-class ops
        return Ok(Ctl::Next);
    }
    vm.pending = Some(Pending::Syscall);
    vm.sync_pc(hot);
    Ok(Ctl::Event(StepOutcome::Syscall {
        intrinsic: intr,
        args,
        cycles: hot.cycles,
    }))
}

fn op_ret<'p>(
    vm: &mut Vm,
    hot: &mut Hot<'p>,
    program: &'p Program,
    instr: Instr,
) -> Result<Ctl, VmError> {
    let ret = if instr == Instr::Ret {
        vm.pop()?
    } else {
        Value::I(0)
    };
    let frame = vm.frames.pop().expect("frame");
    vm.regs.truncate(frame.reg_base);
    vm.mem_sp -= u64::from(frame.mem_size);
    if vm.frames.is_empty() {
        vm.finished = Some(ret);
        return Ok(Ctl::Event(StepOutcome::Finished { exit: ret }));
    }
    vm.stack.push(ret);
    hot.switch_frame(program, vm.frames.last().expect("frame"));
    Ok(Ctl::Next)
}

fn op_nop<'p>(
    _vm: &mut Vm,
    _hot: &mut Hot<'p>,
    _p: &'p Program,
    _instr: Instr,
) -> Result<Ctl, VmError> {
    Ok(Ctl::Next)
}

fn arith(instr: Instr, l: Value, r: Value) -> Result<Value, VmError> {
    let float = l.promotes_to_f(r);
    Ok(if float {
        let (a, b) = (l.as_f(), r.as_f());
        Value::F(match instr {
            Instr::Add => a + b,
            Instr::Sub => a - b,
            Instr::Mul => a * b,
            Instr::Div => a / b,
            Instr::Rem => a % b,
            _ => unreachable!(),
        })
    } else {
        let (a, b) = (l.as_i(), r.as_i());
        if matches!(instr, Instr::Div | Instr::Rem) && b == 0 {
            return Err(VmError::new("integer division by zero"));
        }
        Value::I(match instr {
            Instr::Add => a.wrapping_add(b),
            Instr::Sub => a.wrapping_sub(b),
            Instr::Mul => a.wrapping_mul(b),
            Instr::Div => a.wrapping_div(b),
            Instr::Rem => a.wrapping_rem(b),
            _ => unreachable!(),
        })
    })
}

fn compare(instr: Instr, l: Value, r: Value) -> Value {
    let res = if l.promotes_to_f(r) {
        let (a, b) = (l.as_f(), r.as_f());
        match instr {
            Instr::CmpLt => a < b,
            Instr::CmpLe => a <= b,
            Instr::CmpGt => a > b,
            Instr::CmpGe => a >= b,
            Instr::CmpEq => a == b,
            Instr::CmpNe => a != b,
            _ => unreachable!(),
        }
    } else {
        let (a, b) = (l.as_i(), r.as_i());
        match instr {
            Instr::CmpLt => a < b,
            Instr::CmpLe => a <= b,
            Instr::CmpGt => a > b,
            Instr::CmpGe => a >= b,
            Instr::CmpEq => a == b,
            Instr::CmpNe => a != b,
            _ => unreachable!(),
        }
    };
    Value::I(i64::from(res))
}

/// The narrowed per-unit interface an execution engine drives: construct a
/// context, advance it to the next event, and answer the three pending
/// event kinds (load, store, syscall).
///
/// Engines that interleave many contexts (one per thread or per core)
/// should hold `UnitVm`s rather than [`Vm`]s: the wrapper exposes exactly
/// the resume surface the scheduling loop needs, so introspection methods
/// like [`Vm::depth`] cannot leak into scheduling decisions.
#[derive(Debug, Clone)]
pub struct UnitVm(Vm);

impl UnitVm {
    /// Creates a context poised at `func` with `args`, using the private
    /// stack region starting at `stack_region_base`.
    pub fn new(program: &Program, func: u32, args: Vec<Value>, stack_region_base: u64) -> Self {
        UnitVm(Vm::new(program, func, args, stack_region_base))
    }

    /// Runs until something needs the engine (memory access, syscall, or
    /// completion). See [`Vm::run_until_event`].
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on stack underflow or malformed bytecode.
    pub fn run_until_event(&mut self, program: &Program) -> Result<StepOutcome, VmError> {
        self.0.run_until_event(program)
    }

    /// Completes a pending load with the value the memory model resolved.
    ///
    /// # Panics
    ///
    /// Panics if no load is pending.
    pub fn provide_load(&mut self, v: Value) {
        self.0.provide_load(v);
    }

    /// Completes a pending store.
    ///
    /// # Panics
    ///
    /// Panics if no store is pending.
    pub fn store_done(&mut self) {
        self.0.store_done();
    }

    /// Completes a pending syscall, pushing its return value.
    ///
    /// # Panics
    ///
    /// Panics if no syscall is pending.
    pub fn syscall_return(&mut self, v: Value) {
        self.0.syscall_return(v);
    }

    /// Total bytecode instructions retired. See
    /// [`Vm::instructions_retired`].
    pub fn instructions_retired(&self) -> u64 {
        self.0.instructions_retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, STACKS_BASE};
    use crate::data::ByteMemory;
    use hsm_cir::parse;

    /// A tiny single-threaded harness: resolves loads/stores against one
    /// ByteMemory, fails on syscalls. Returns (exit value, total cycles).
    fn run(src: &str) -> (Value, u64) {
        run_with_mem(src, &mut ByteMemory::new())
    }

    fn run_with_mem(src: &str, mem: &mut ByteMemory) -> (Value, u64) {
        let program = compile(&parse(src).expect("parse")).expect("compile");
        for (addr, bytes) in &program.image {
            mem.write_bytes(*addr, bytes);
        }
        let mut vm = Vm::new(&program, program.entry, vec![], STACKS_BASE);
        let mut cycles = 0u64;
        loop {
            match vm.run_until_event(&program).expect("vm") {
                StepOutcome::Ran { cycles: c } => cycles += c,
                StepOutcome::Load {
                    addr,
                    kind,
                    cycles: c,
                } => {
                    cycles += c + 1;
                    vm.provide_load(mem.load(addr, kind));
                }
                StepOutcome::Store {
                    addr,
                    kind,
                    value,
                    cycles: c,
                } => {
                    cycles += c + 1;
                    mem.store(addr, kind, value);
                    vm.store_done();
                }
                StepOutcome::Syscall { intrinsic, .. } => {
                    panic!("unexpected syscall {intrinsic:?}");
                }
                StepOutcome::Finished { exit } => return (exit, cycles),
            }
        }
    }

    #[test]
    fn returns_constant() {
        assert_eq!(run("int main() { return 42; }").0, Value::I(42));
    }

    #[test]
    fn arithmetic_matches_c() {
        assert_eq!(run("int main() { return 7 / 2; }").0, Value::I(3));
        assert_eq!(run("int main() { return 7 % 3; }").0, Value::I(1));
        assert_eq!(run("int main() { return 2 + 3 * 4; }").0, Value::I(14));
        assert_eq!(run("int main() { return (2 + 3) * 4; }").0, Value::I(20));
        assert_eq!(run("int main() { return 1 << 5; }").0, Value::I(32));
        assert_eq!(run("int main() { return -5 + 3; }").0, Value::I(-2));
    }

    #[test]
    fn float_arithmetic() {
        let (v, _) =
            run("int main() { double x = 4.0; double y = x / 8.0; return (int)(y * 100.0); }");
        assert_eq!(v, Value::I(50));
    }

    #[test]
    fn mixed_int_float_promotes() {
        let (v, _) = run("int main() { int n = 8; double x = 4.0 / n; return (int)(x * 10.0); }");
        assert_eq!(v, Value::I(5));
    }

    #[test]
    fn locals_and_loops() {
        let (v, _) =
            run("int main() { int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s; }");
        assert_eq!(v, Value::I(55));
    }

    #[test]
    fn while_and_break_continue() {
        let (v, _) = run(
            "int main() { int s = 0; int i = 0; while (1) { i++; if (i > 10) break; if (i % 2) continue; s += i; } return s; }",
        );
        assert_eq!(v, Value::I(30)); // 2+4+6+8+10
    }

    #[test]
    fn do_while_runs_once() {
        let (v, _) = run("int main() { int i = 99; do { i = 7; } while (0); return i; }");
        assert_eq!(v, Value::I(7));
    }

    #[test]
    fn global_arrays_and_pointers() {
        let (v, _) = run(
            "int sum[3] = {0}; int *ptr; int main() { int tmp = 5; ptr = &tmp; sum[1] = *ptr + 2; return sum[1]; }",
        );
        assert_eq!(v, Value::I(7));
    }

    #[test]
    fn global_initializer_image_applies() {
        let (v, _) = run("int c[3] = {10, 20, 30}; int main() { return c[0] + c[1] + c[2]; }");
        assert_eq!(v, Value::I(60));
    }

    #[test]
    fn function_calls_and_recursion() {
        let (v, _) = run(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } int main() { return fib(10); }",
        );
        assert_eq!(v, Value::I(55));
    }

    #[test]
    fn pointer_walk() {
        let (v, _) = run(
            "double a[4]; int main() { int i; for (i = 0; i < 4; i++) a[i] = i * 1.5; double *p = a; double s = 0.0; for (i = 0; i < 4; i++) { s += *p; p = p + 1; } return (int)(s * 10.0); }",
        );
        assert_eq!(v, Value::I(90)); // (0+1.5+3+4.5)*10
    }

    #[test]
    fn post_and_pre_increment_values() {
        assert_eq!(
            run("int main() { int i = 5; int j = i++; return j * 100 + i; }").0,
            Value::I(506)
        );
        assert_eq!(
            run("int main() { int i = 5; int j = ++i; return j * 100 + i; }").0,
            Value::I(606)
        );
        // Memory-resident (array element) post-increment.
        assert_eq!(
            run("int a[2] = {3, 0}; int main() { a[1] = a[0]++; return a[1] * 10 + a[0]; }").0,
            Value::I(34)
        );
    }

    #[test]
    fn compound_assignment_on_memory() {
        let (v, _) = run("int g; int main() { g = 10; g += 5; g *= 2; g -= 3; g /= 2; return g; }");
        assert_eq!(v, Value::I(13)); // ((10+5)*2-3)/2 = 27/2 = 13
    }

    #[test]
    fn ternary_and_logical() {
        assert_eq!(
            run("int main() { int a = 5; return a > 3 ? 1 : 2; }").0,
            Value::I(1)
        );
        assert_eq!(
            run("int main() { int a = 0; return a && 1; }").0,
            Value::I(0)
        );
        assert_eq!(
            run("int main() { int a = 0; return a || 2; }").0,
            Value::I(1)
        );
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        let (v, _) = run(
            "int g = 0; int bump() { g = g + 1; return 1; } int main() { int a = 0; int r = a && bump(); return g * 10 + r; }",
        );
        assert_eq!(v, Value::I(0), "bump must not run");
    }

    #[test]
    fn sqrt_is_inline() {
        let (v, _) = run("int main() { double x = sqrt(16.0); return (int)x; }");
        assert_eq!(v, Value::I(4));
    }

    #[test]
    fn division_by_zero_is_a_fault() {
        let program = compile(&parse("int main() { int z = 0; return 5 / z; }").unwrap()).unwrap();
        let mut vm = Vm::new(&program, program.entry, vec![], STACKS_BASE);
        let err = loop {
            match vm.run_until_event(&program) {
                Ok(StepOutcome::Finished { .. }) => panic!("should fault"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn cycles_accumulate_and_loops_cost_more() {
        let (_, short) =
            run("int main() { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s; }");
        let (_, long) =
            run("int main() { int s = 0; int i; for (i = 0; i < 1000; i++) s += i; return s; }");
        assert!(long > short * 20, "long {long} short {short}");
    }

    #[test]
    fn deep_recursion_overflows_gracefully() {
        let src = "int f(int n) { int big[20000]; big[0] = n; if (n == 0) return 0; return f(n - 1) + big[0]; } int main() { return f(100); }";
        let program = compile(&parse(src).unwrap()).unwrap();
        let mut vm = Vm::new(&program, program.entry, vec![], STACKS_BASE);
        let mut mem = ByteMemory::new();
        let err = loop {
            match vm.run_until_event(&program) {
                Ok(StepOutcome::Finished { .. }) => panic!("should overflow"),
                Ok(StepOutcome::Load { addr, kind, .. }) => vm.provide_load(mem.load(addr, kind)),
                Ok(StepOutcome::Store {
                    addr, kind, value, ..
                }) => {
                    mem.store(addr, kind, value);
                    vm.store_done();
                }
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("stack overflow"), "{err}");
    }

    #[test]
    fn char_and_string_access() {
        let (v, _) = run(r#"int main() { char *s = "AB"; return s[0] + s[1]; }"#);
        assert_eq!(v, Value::I(65 + 66));
    }

    #[test]
    fn multi_function_programs_share_globals() {
        let (v, _) = run(
            "int acc; void add(int x) { acc += x; } int main() { acc = 0; add(3); add(4); return acc; }",
        );
        assert_eq!(v, Value::I(7));
    }

    #[test]
    fn switch_dispatches_to_matching_case() {
        let src = "int classify(int x) { switch (x) { case 0: return 10; case 5: return 50; default: return 99; } } int main() { return classify(5); }";
        assert_eq!(run(src).0, Value::I(50));
        let src0 = "int classify(int x) { switch (x) { case 0: return 10; case 5: return 50; default: return 99; } } int main() { return classify(0); }";
        assert_eq!(run(src0).0, Value::I(10));
        let srcd = "int classify(int x) { switch (x) { case 0: return 10; case 5: return 50; default: return 99; } } int main() { return classify(7); }";
        assert_eq!(run(srcd).0, Value::I(99));
    }

    #[test]
    fn switch_falls_through_without_break() {
        let (v, _) = run(
            "int main() { int x = 1; int acc = 0; switch (x) { case 1: acc += 1; case 2: acc += 2; case 3: acc += 4; break; case 4: acc += 8; } return acc; }",
        );
        assert_eq!(v, Value::I(7), "1 falls through 2 and 3, breaks before 4");
    }

    #[test]
    fn switch_without_default_skips_entirely() {
        let (v, _) =
            run("int main() { int acc = 5; switch (42) { case 1: acc = 0; break; } return acc; }");
        assert_eq!(v, Value::I(5));
    }

    #[test]
    fn switch_inside_loop_continue_targets_loop() {
        let (v, _) = run(
            "int main() { int s = 0; int i; for (i = 0; i < 6; i++) { switch (i % 3) { case 0: continue; case 1: s += 10; break; default: s += 1; } } return s; }",
        );
        // i: 0 skip, 1 +10, 2 +1, 3 skip, 4 +10, 5 +1 = 22
        assert_eq!(v, Value::I(22));
    }

    #[test]
    fn nested_switches() {
        let (v, _) = run(
            "int main() { int a = 1; int b = 2; int r = 0; switch (a) { case 1: switch (b) { case 2: r = 22; break; default: r = 20; } break; default: r = 9; } return r; }",
        );
        assert_eq!(v, Value::I(22));
    }
}
