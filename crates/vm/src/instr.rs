//! The stack-machine instruction set.
//!
//! The compiler lowers CIR to this bytecode; the VM executes one
//! instruction per [`crate::vm::Vm::run_until_event`], which is what makes execution
//! suspendable — the discrete-event engine can interleave 48 cores at
//! instruction granularity.

use crate::value::MemKind;
use std::fmt;

/// Library calls resolved by the execution engine (or inline by the VM for
/// the pure-math ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Intrinsic {
    // Common C library.
    Printf,
    Sqrt,
    Fabs,
    Exit,
    Malloc,
    Wtime,
    // Pthread API (meaningful in pthread execution mode).
    PthreadCreate,
    PthreadJoin,
    PthreadExit,
    PthreadSelf,
    MutexInit,
    MutexLock,
    MutexUnlock,
    MutexDestroy,
    BarrierInit,
    BarrierWait,
    BarrierDestroy,
    // RCCE API (meaningful in RCCE execution mode).
    RcceInit,
    RcceFinalize,
    RcceUe,
    RcceNumUes,
    RcceShmalloc,
    RcceMpbMalloc,
    RcceBarrier,
    RcceAcquireLock,
    RcceReleaseLock,
    RcceWtime,
    RccePut,
    RcceGet,
    RcceFlagAlloc,
    RcceFlagWrite,
    RcceFlagRead,
    RcceWaitUntil,
    RcceSend,
    RcceRecv,
}

impl Intrinsic {
    /// Resolves a C function name to an intrinsic.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        use Intrinsic::*;
        Some(match name {
            "printf" => Printf,
            "sqrt" => Sqrt,
            "fabs" => Fabs,
            "exit" => Exit,
            "malloc" => Malloc,
            "wtime" => Wtime,
            "pthread_create" => PthreadCreate,
            "pthread_join" => PthreadJoin,
            "pthread_exit" => PthreadExit,
            "pthread_self" => PthreadSelf,
            "pthread_mutex_init" => MutexInit,
            "pthread_mutex_lock" => MutexLock,
            "pthread_mutex_unlock" => MutexUnlock,
            "pthread_mutex_destroy" => MutexDestroy,
            "pthread_barrier_init" => BarrierInit,
            "pthread_barrier_wait" => BarrierWait,
            "pthread_barrier_destroy" => BarrierDestroy,
            "RCCE_init" => RcceInit,
            "RCCE_finalize" => RcceFinalize,
            "RCCE_ue" => RcceUe,
            "RCCE_num_ues" => RcceNumUes,
            "RCCE_shmalloc" => RcceShmalloc,
            "RCCE_malloc" => RcceMpbMalloc,
            "RCCE_barrier" => RcceBarrier,
            "RCCE_acquire_lock" => RcceAcquireLock,
            "RCCE_release_lock" => RcceReleaseLock,
            "RCCE_wtime" => RcceWtime,
            "RCCE_put" => RccePut,
            "RCCE_get" => RcceGet,
            "RCCE_flag_alloc" => RcceFlagAlloc,
            "RCCE_flag_write" => RcceFlagWrite,
            "RCCE_flag_read" => RcceFlagRead,
            "RCCE_wait_until" => RcceWaitUntil,
            "RCCE_send" => RcceSend,
            "RCCE_recv" => RcceRecv,
            _ => return None,
        })
    }

    /// Whether the VM can evaluate this intrinsic itself without engine
    /// involvement (pure math).
    pub fn is_pure(self) -> bool {
        matches!(self, Intrinsic::Sqrt | Intrinsic::Fabs)
    }
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum Instr {
    /// Push an integer (also used for addresses and function indices).
    PushI(i64),
    /// Push a float.
    PushF(f64),
    /// Read register-allocated local `slot`.
    LocalGet(u16),
    /// Write register-allocated local `slot` (pops).
    LocalSet(u16),
    /// Push `frame.mem_base + offset` (memory-resident locals/arrays).
    LocalMemAddr(u32),
    /// Pop address, load a value through the memory system.
    Load(MemKind),
    /// Pop value then address, store through the memory system. When
    /// `keep` is true the stored value is pushed back (assignment used as
    /// an expression).
    Store(MemKind, bool),
    Dup,
    Pop,
    Swap,
    /// Rotate the top three values: `a b c` → `b c a`.
    Rot3,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Neg,
    Not,
    BitNot,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    CmpEq,
    CmpNe,
    /// Convert int → float.
    I2F,
    /// Convert float → int (truncating).
    F2I,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero(u32),
    /// Pop; jump when non-zero.
    JumpIfNotZero(u32),
    /// Call function by index; the top `nargs` values become arguments.
    Call(u32, u8),
    /// Call a library intrinsic with `nargs` stacked arguments.
    CallIntrinsic(Intrinsic, u8),
    /// Return popping the return value.
    Ret,
    /// Return with an implicit 0.
    RetVoid,
    Nop,
}

/// The fieldless opcode of each [`Instr`] variant.
///
/// `Op` is the index space of the VM's jump-table dispatch: discriminants
/// are dense (`0..Op::COUNT`), so `table[instr.op() as usize]` is a single
/// bounds-free load. [`Op::ALL`] lists every opcode in discriminant order;
/// `tests/dispatch.rs` uses it to prove the table covers the instruction
/// set and agrees with the reference match-based dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    PushI = 0,
    PushF,
    LocalGet,
    LocalSet,
    LocalMemAddr,
    Load,
    Store,
    Dup,
    Pop,
    Swap,
    Rot3,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Neg,
    Not,
    BitNot,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    CmpEq,
    CmpNe,
    I2F,
    F2I,
    Jump,
    JumpIfZero,
    JumpIfNotZero,
    Call,
    CallIntrinsic,
    Ret,
    RetVoid,
    Nop,
}

impl Op {
    /// Number of opcodes (the jump table's length).
    pub const COUNT: usize = 40;

    /// Every opcode, in discriminant order (`ALL[i] as usize == i`).
    pub const ALL: [Op; Op::COUNT] = [
        Op::PushI,
        Op::PushF,
        Op::LocalGet,
        Op::LocalSet,
        Op::LocalMemAddr,
        Op::Load,
        Op::Store,
        Op::Dup,
        Op::Pop,
        Op::Swap,
        Op::Rot3,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Rem,
        Op::Shl,
        Op::Shr,
        Op::BitAnd,
        Op::BitOr,
        Op::BitXor,
        Op::Neg,
        Op::Not,
        Op::BitNot,
        Op::CmpLt,
        Op::CmpLe,
        Op::CmpGt,
        Op::CmpGe,
        Op::CmpEq,
        Op::CmpNe,
        Op::I2F,
        Op::F2I,
        Op::Jump,
        Op::JumpIfZero,
        Op::JumpIfNotZero,
        Op::Call,
        Op::CallIntrinsic,
        Op::Ret,
        Op::RetVoid,
        Op::Nop,
    ];
}

impl Instr {
    /// The fieldless opcode of this instruction (jump-table index).
    #[inline(always)]
    pub fn op(self) -> Op {
        match self {
            Instr::PushI(_) => Op::PushI,
            Instr::PushF(_) => Op::PushF,
            Instr::LocalGet(_) => Op::LocalGet,
            Instr::LocalSet(_) => Op::LocalSet,
            Instr::LocalMemAddr(_) => Op::LocalMemAddr,
            Instr::Load(_) => Op::Load,
            Instr::Store(..) => Op::Store,
            Instr::Dup => Op::Dup,
            Instr::Pop => Op::Pop,
            Instr::Swap => Op::Swap,
            Instr::Rot3 => Op::Rot3,
            Instr::Add => Op::Add,
            Instr::Sub => Op::Sub,
            Instr::Mul => Op::Mul,
            Instr::Div => Op::Div,
            Instr::Rem => Op::Rem,
            Instr::Shl => Op::Shl,
            Instr::Shr => Op::Shr,
            Instr::BitAnd => Op::BitAnd,
            Instr::BitOr => Op::BitOr,
            Instr::BitXor => Op::BitXor,
            Instr::Neg => Op::Neg,
            Instr::Not => Op::Not,
            Instr::BitNot => Op::BitNot,
            Instr::CmpLt => Op::CmpLt,
            Instr::CmpLe => Op::CmpLe,
            Instr::CmpGt => Op::CmpGt,
            Instr::CmpGe => Op::CmpGe,
            Instr::CmpEq => Op::CmpEq,
            Instr::CmpNe => Op::CmpNe,
            Instr::I2F => Op::I2F,
            Instr::F2I => Op::F2I,
            Instr::Jump(_) => Op::Jump,
            Instr::JumpIfZero(_) => Op::JumpIfZero,
            Instr::JumpIfNotZero(_) => Op::JumpIfNotZero,
            Instr::Call(..) => Op::Call,
            Instr::CallIntrinsic(..) => Op::CallIntrinsic,
            Instr::Ret => Op::Ret,
            Instr::RetVoid => Op::RetVoid,
            Instr::Nop => Op::Nop,
        }
    }

    /// Base execution cost in core cycles (P54C-flavoured CPI model).
    /// `Load`/`Store` report only issue cost; the memory system adds the
    /// hierarchy latency.
    pub fn base_cost(self) -> u64 {
        use Instr::*;
        match self {
            PushI(_) | PushF(_) | LocalGet(_) | LocalSet(_) | LocalMemAddr(_) | Dup | Pop
            | Swap | Rot3 | Nop => 1,
            Load(_) | Store(..) => 1,
            Add | Sub | BitAnd | BitOr | BitXor | Neg | Not | BitNot | CmpLt | CmpLe | CmpGt
            | CmpGe | CmpEq | CmpNe | Shl | Shr | I2F | F2I => 1,
            Mul => 4,
            Div | Rem => 24,
            Jump(_) | JumpIfZero(_) | JumpIfNotZero(_) => 1,
            Call(..) | CallIntrinsic(..) => 4,
            Ret | RetVoid => 3,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_resolution() {
        assert_eq!(Intrinsic::from_name("printf"), Some(Intrinsic::Printf));
        assert_eq!(Intrinsic::from_name("RCCE_ue"), Some(Intrinsic::RcceUe));
        assert_eq!(
            Intrinsic::from_name("RCCE_malloc"),
            Some(Intrinsic::RcceMpbMalloc)
        );
        assert_eq!(Intrinsic::from_name("unknown_fn"), None);
    }

    #[test]
    fn pure_intrinsics() {
        assert!(Intrinsic::Sqrt.is_pure());
        assert!(!Intrinsic::Printf.is_pure());
        assert!(!Intrinsic::RcceBarrier.is_pure());
    }

    #[test]
    fn division_is_expensive() {
        assert!(Instr::Div.base_cost() > Instr::Mul.base_cost());
        assert!(Instr::Mul.base_cost() > Instr::Add.base_cost());
    }

    #[test]
    fn opcodes_are_dense_and_complete() {
        assert_eq!(Op::ALL.len(), Op::COUNT);
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i, "discriminants must be dense");
        }
    }

    #[test]
    fn every_instr_maps_to_its_opcode() {
        use crate::value::MemKind;
        // One sample instruction per variant, in Op order.
        let samples: [Instr; Op::COUNT] = [
            Instr::PushI(1),
            Instr::PushF(1.0),
            Instr::LocalGet(0),
            Instr::LocalSet(0),
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Store(MemKind::I32, false),
            Instr::Dup,
            Instr::Pop,
            Instr::Swap,
            Instr::Rot3,
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::Div,
            Instr::Rem,
            Instr::Shl,
            Instr::Shr,
            Instr::BitAnd,
            Instr::BitOr,
            Instr::BitXor,
            Instr::Neg,
            Instr::Not,
            Instr::BitNot,
            Instr::CmpLt,
            Instr::CmpLe,
            Instr::CmpGt,
            Instr::CmpGe,
            Instr::CmpEq,
            Instr::CmpNe,
            Instr::I2F,
            Instr::F2I,
            Instr::Jump(0),
            Instr::JumpIfZero(0),
            Instr::JumpIfNotZero(0),
            Instr::Call(0, 0),
            Instr::CallIntrinsic(Intrinsic::Printf, 0),
            Instr::Ret,
            Instr::RetVoid,
            Instr::Nop,
        ];
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.op() as usize, i, "{s:?} maps to the wrong opcode");
        }
    }
}
