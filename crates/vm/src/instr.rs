//! The stack-machine instruction set.
//!
//! The compiler lowers CIR to this bytecode; the VM executes one
//! instruction per [`crate::vm::Vm::run_until_event`], which is what makes execution
//! suspendable — the discrete-event engine can interleave 48 cores at
//! instruction granularity.

use crate::value::MemKind;
use std::fmt;

/// Library calls resolved by the execution engine (or inline by the VM for
/// the pure-math ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    // Common C library.
    /// `printf(fmt, ...)` — formatted output through the engine.
    Printf,
    /// `sqrt(x)` — pure math, evaluated inline by the VM.
    Sqrt,
    /// `fabs(x)` — pure math, evaluated inline by the VM.
    Fabs,
    /// `exit(code)` — terminate the program.
    Exit,
    /// `malloc(size)` — simulated-heap allocation.
    Malloc,
    /// `wtime()` — simulated wall-clock in seconds.
    Wtime,
    // Pthread API (meaningful in pthread execution mode).
    /// `pthread_create(&tid, attr, fn, arg)`.
    PthreadCreate,
    /// `pthread_join(tid, retp)`.
    PthreadJoin,
    /// `pthread_exit(ret)`.
    PthreadExit,
    /// `pthread_self()`.
    PthreadSelf,
    /// `pthread_mutex_init(&m, attr)`.
    MutexInit,
    /// `pthread_mutex_lock(&m)`.
    MutexLock,
    /// `pthread_mutex_unlock(&m)`.
    MutexUnlock,
    /// `pthread_mutex_destroy(&m)`.
    MutexDestroy,
    /// `pthread_barrier_init(&b, attr, count)`.
    BarrierInit,
    /// `pthread_barrier_wait(&b)`.
    BarrierWait,
    /// `pthread_barrier_destroy(&b)`.
    BarrierDestroy,
    // RCCE API (meaningful in RCCE execution mode).
    /// `RCCE_init(&argc, &argv)`.
    RcceInit,
    /// `RCCE_finalize()`.
    RcceFinalize,
    /// `RCCE_ue()` — this unit's id.
    RcceUe,
    /// `RCCE_num_ues()` — unit count.
    RcceNumUes,
    /// `RCCE_shmalloc(size)` — shared off-chip DRAM allocation.
    RcceShmalloc,
    /// `RCCE_malloc(size)` — on-chip MPB allocation.
    RcceMpbMalloc,
    /// `RCCE_barrier(&comm)`.
    RcceBarrier,
    /// `RCCE_acquire_lock(ue)` — test-and-set lock acquire.
    RcceAcquireLock,
    /// `RCCE_release_lock(ue)`.
    RcceReleaseLock,
    /// `RCCE_wtime()`.
    RcceWtime,
    /// `RCCE_put(dst, src, size, ue)` — push into a remote MPB.
    RccePut,
    /// `RCCE_get(dst, src, size, ue)` — pull from a remote MPB.
    RcceGet,
    /// `RCCE_flag_alloc(&flag)`.
    RcceFlagAlloc,
    /// `RCCE_flag_write(&flag, value, ue)`.
    RcceFlagWrite,
    /// `RCCE_flag_read(&flag, &value, ue)`.
    RcceFlagRead,
    /// `RCCE_wait_until(flag, value)` — spin until a flag matches.
    RcceWaitUntil,
    /// `RCCE_send(buf, size, ue)` — blocking MPB send.
    RcceSend,
    /// `RCCE_recv(buf, size, ue)` — blocking MPB receive.
    RcceRecv,
    /// `task_spawn(fn, arg, in1, in1_bytes, in2, in2_bytes, out, out_bytes)`
    /// — spawn a dataflow task running `fn(arg)` with up to two declared
    /// input regions and one output region. Returns the task id (>= 1).
    TaskSpawn,
    /// `task_wait_all()` — block until every spawned task has completed.
    TaskWaitAll,
    /// `task_self()` — id of the calling task (0 in `main`).
    TaskSelf,
    /// `task_workers()` — number of cores available to run tasks.
    TaskWorkers,
}

impl Intrinsic {
    /// Resolves a C function name to an intrinsic.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        use Intrinsic::*;
        Some(match name {
            "printf" => Printf,
            "sqrt" => Sqrt,
            "fabs" => Fabs,
            "exit" => Exit,
            "malloc" => Malloc,
            "wtime" => Wtime,
            "pthread_create" => PthreadCreate,
            "pthread_join" => PthreadJoin,
            "pthread_exit" => PthreadExit,
            "pthread_self" => PthreadSelf,
            "pthread_mutex_init" => MutexInit,
            "pthread_mutex_lock" => MutexLock,
            "pthread_mutex_unlock" => MutexUnlock,
            "pthread_mutex_destroy" => MutexDestroy,
            "pthread_barrier_init" => BarrierInit,
            "pthread_barrier_wait" => BarrierWait,
            "pthread_barrier_destroy" => BarrierDestroy,
            "RCCE_init" => RcceInit,
            "RCCE_finalize" => RcceFinalize,
            "RCCE_ue" => RcceUe,
            "RCCE_num_ues" => RcceNumUes,
            "RCCE_shmalloc" => RcceShmalloc,
            "RCCE_malloc" => RcceMpbMalloc,
            "RCCE_barrier" => RcceBarrier,
            "RCCE_acquire_lock" => RcceAcquireLock,
            "RCCE_release_lock" => RcceReleaseLock,
            "RCCE_wtime" => RcceWtime,
            "RCCE_put" => RccePut,
            "RCCE_get" => RcceGet,
            "RCCE_flag_alloc" => RcceFlagAlloc,
            "RCCE_flag_write" => RcceFlagWrite,
            "RCCE_flag_read" => RcceFlagRead,
            "RCCE_wait_until" => RcceWaitUntil,
            "RCCE_send" => RcceSend,
            "RCCE_recv" => RcceRecv,
            "task_spawn" => TaskSpawn,
            "task_wait_all" => TaskWaitAll,
            "task_self" => TaskSelf,
            "task_workers" => TaskWorkers,
            _ => return None,
        })
    }

    /// The C function name this intrinsic resolves from — the inverse of
    /// [`Intrinsic::from_name`], used by the bytecode serializer as the
    /// stable on-disk spelling.
    pub fn name(self) -> &'static str {
        use Intrinsic::*;
        match self {
            Printf => "printf",
            Sqrt => "sqrt",
            Fabs => "fabs",
            Exit => "exit",
            Malloc => "malloc",
            Wtime => "wtime",
            PthreadCreate => "pthread_create",
            PthreadJoin => "pthread_join",
            PthreadExit => "pthread_exit",
            PthreadSelf => "pthread_self",
            MutexInit => "pthread_mutex_init",
            MutexLock => "pthread_mutex_lock",
            MutexUnlock => "pthread_mutex_unlock",
            MutexDestroy => "pthread_mutex_destroy",
            BarrierInit => "pthread_barrier_init",
            BarrierWait => "pthread_barrier_wait",
            BarrierDestroy => "pthread_barrier_destroy",
            RcceInit => "RCCE_init",
            RcceFinalize => "RCCE_finalize",
            RcceUe => "RCCE_ue",
            RcceNumUes => "RCCE_num_ues",
            RcceShmalloc => "RCCE_shmalloc",
            RcceMpbMalloc => "RCCE_malloc",
            RcceBarrier => "RCCE_barrier",
            RcceAcquireLock => "RCCE_acquire_lock",
            RcceReleaseLock => "RCCE_release_lock",
            RcceWtime => "RCCE_wtime",
            RccePut => "RCCE_put",
            RcceGet => "RCCE_get",
            RcceFlagAlloc => "RCCE_flag_alloc",
            RcceFlagWrite => "RCCE_flag_write",
            RcceFlagRead => "RCCE_flag_read",
            RcceWaitUntil => "RCCE_wait_until",
            RcceSend => "RCCE_send",
            RcceRecv => "RCCE_recv",
            TaskSpawn => "task_spawn",
            TaskWaitAll => "task_wait_all",
            TaskSelf => "task_self",
            TaskWorkers => "task_workers",
        }
    }

    /// Whether the VM can evaluate this intrinsic itself without engine
    /// involvement (pure math).
    pub fn is_pure(self) -> bool {
        matches!(self, Intrinsic::Sqrt | Intrinsic::Fabs)
    }
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push an integer (also used for addresses and function indices).
    PushI(i64),
    /// Push a float.
    PushF(f64),
    /// Read register-allocated local `slot`.
    LocalGet(u16),
    /// Write register-allocated local `slot` (pops).
    LocalSet(u16),
    /// Push `frame.mem_base + offset` (memory-resident locals/arrays).
    LocalMemAddr(u32),
    /// Pop address, load a value through the memory system.
    Load(MemKind),
    /// Pop value then address, store through the memory system. When
    /// `keep` is true the stored value is pushed back (assignment used as
    /// an expression).
    Store(MemKind, bool),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Exchange the top two values.
    Swap,
    /// Rotate the top three values: `a b c` → `b c a`.
    Rot3,
    /// `a + b` (wrapping on integers, C promotion when either is float).
    Add,
    /// `a - b` (wrapping / promoting like [`Instr::Add`]).
    Sub,
    /// `a * b` (wrapping / promoting like [`Instr::Add`]).
    Mul,
    /// `a / b`; integer division by zero faults the VM.
    Div,
    /// `a % b`; integer remainder by zero faults the VM.
    Rem,
    /// `a << b` (operands coerce to integers, shift amount wraps).
    Shl,
    /// `a >> b` (arithmetic; coercion as [`Instr::Shl`]).
    Shr,
    /// `a & b` (integer coercion).
    BitAnd,
    /// `a | b` (integer coercion).
    BitOr,
    /// `a ^ b` (integer coercion).
    BitXor,
    /// Arithmetic negation (wrapping on integers).
    Neg,
    /// Logical not: pushes `1` when the operand is falsy, else `0`.
    Not,
    /// Bitwise complement (integer coercion).
    BitNot,
    /// `a < b` → `0`/`1` (C usual arithmetic conversions).
    CmpLt,
    /// `a <= b` → `0`/`1`.
    CmpLe,
    /// `a > b` → `0`/`1`.
    CmpGt,
    /// `a >= b` → `0`/`1`.
    CmpGe,
    /// `a == b` → `0`/`1`.
    CmpEq,
    /// `a != b` → `0`/`1`.
    CmpNe,
    /// Convert int → float.
    I2F,
    /// Convert float → int (truncating).
    F2I,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero(u32),
    /// Pop; jump when non-zero.
    JumpIfNotZero(u32),
    /// Call function by index; the top `nargs` values become arguments.
    Call(u32, u8),
    /// Call a library intrinsic with `nargs` stacked arguments.
    CallIntrinsic(Intrinsic, u8),
    /// Return popping the return value.
    Ret,
    /// Return with an implicit 0.
    RetVoid,
    /// Do nothing (placeholder; the optimizer removes these).
    Nop,
}

/// The fieldless opcode of each [`Instr`] variant.
///
/// `Op` is the index space of the VM's jump-table dispatch: discriminants
/// are dense (`0..Op::COUNT`), so `table[instr.op() as usize]` is a single
/// bounds-free load. [`Op::ALL`] lists every opcode in discriminant order;
/// `tests/dispatch.rs` uses it to prove the table covers the instruction
/// set and agrees with the reference match-based dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Opcode of [`Instr::PushI`].
    PushI = 0,
    /// Opcode of [`Instr::PushF`].
    PushF,
    /// Opcode of [`Instr::LocalGet`].
    LocalGet,
    /// Opcode of [`Instr::LocalSet`].
    LocalSet,
    /// Opcode of [`Instr::LocalMemAddr`].
    LocalMemAddr,
    /// Opcode of [`Instr::Load`].
    Load,
    /// Opcode of [`Instr::Store`].
    Store,
    /// Opcode of [`Instr::Dup`].
    Dup,
    /// Opcode of [`Instr::Pop`].
    Pop,
    /// Opcode of [`Instr::Swap`].
    Swap,
    /// Opcode of [`Instr::Rot3`].
    Rot3,
    /// Opcode of [`Instr::Add`].
    Add,
    /// Opcode of [`Instr::Sub`].
    Sub,
    /// Opcode of [`Instr::Mul`].
    Mul,
    /// Opcode of [`Instr::Div`].
    Div,
    /// Opcode of [`Instr::Rem`].
    Rem,
    /// Opcode of [`Instr::Shl`].
    Shl,
    /// Opcode of [`Instr::Shr`].
    Shr,
    /// Opcode of [`Instr::BitAnd`].
    BitAnd,
    /// Opcode of [`Instr::BitOr`].
    BitOr,
    /// Opcode of [`Instr::BitXor`].
    BitXor,
    /// Opcode of [`Instr::Neg`].
    Neg,
    /// Opcode of [`Instr::Not`].
    Not,
    /// Opcode of [`Instr::BitNot`].
    BitNot,
    /// Opcode of [`Instr::CmpLt`].
    CmpLt,
    /// Opcode of [`Instr::CmpLe`].
    CmpLe,
    /// Opcode of [`Instr::CmpGt`].
    CmpGt,
    /// Opcode of [`Instr::CmpGe`].
    CmpGe,
    /// Opcode of [`Instr::CmpEq`].
    CmpEq,
    /// Opcode of [`Instr::CmpNe`].
    CmpNe,
    /// Opcode of [`Instr::I2F`].
    I2F,
    /// Opcode of [`Instr::F2I`].
    F2I,
    /// Opcode of [`Instr::Jump`].
    Jump,
    /// Opcode of [`Instr::JumpIfZero`].
    JumpIfZero,
    /// Opcode of [`Instr::JumpIfNotZero`].
    JumpIfNotZero,
    /// Opcode of [`Instr::Call`].
    Call,
    /// Opcode of [`Instr::CallIntrinsic`].
    CallIntrinsic,
    /// Opcode of [`Instr::Ret`].
    Ret,
    /// Opcode of [`Instr::RetVoid`].
    RetVoid,
    /// Opcode of [`Instr::Nop`].
    Nop,
}

impl Op {
    /// Number of opcodes (the jump table's length).
    pub const COUNT: usize = 40;

    /// Every opcode, in discriminant order (`ALL[i] as usize == i`).
    pub const ALL: [Op; Op::COUNT] = [
        Op::PushI,
        Op::PushF,
        Op::LocalGet,
        Op::LocalSet,
        Op::LocalMemAddr,
        Op::Load,
        Op::Store,
        Op::Dup,
        Op::Pop,
        Op::Swap,
        Op::Rot3,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Rem,
        Op::Shl,
        Op::Shr,
        Op::BitAnd,
        Op::BitOr,
        Op::BitXor,
        Op::Neg,
        Op::Not,
        Op::BitNot,
        Op::CmpLt,
        Op::CmpLe,
        Op::CmpGt,
        Op::CmpGe,
        Op::CmpEq,
        Op::CmpNe,
        Op::I2F,
        Op::F2I,
        Op::Jump,
        Op::JumpIfZero,
        Op::JumpIfNotZero,
        Op::Call,
        Op::CallIntrinsic,
        Op::Ret,
        Op::RetVoid,
        Op::Nop,
    ];
}

impl Instr {
    /// The fieldless opcode of this instruction (jump-table index).
    #[inline(always)]
    pub fn op(self) -> Op {
        match self {
            Instr::PushI(_) => Op::PushI,
            Instr::PushF(_) => Op::PushF,
            Instr::LocalGet(_) => Op::LocalGet,
            Instr::LocalSet(_) => Op::LocalSet,
            Instr::LocalMemAddr(_) => Op::LocalMemAddr,
            Instr::Load(_) => Op::Load,
            Instr::Store(..) => Op::Store,
            Instr::Dup => Op::Dup,
            Instr::Pop => Op::Pop,
            Instr::Swap => Op::Swap,
            Instr::Rot3 => Op::Rot3,
            Instr::Add => Op::Add,
            Instr::Sub => Op::Sub,
            Instr::Mul => Op::Mul,
            Instr::Div => Op::Div,
            Instr::Rem => Op::Rem,
            Instr::Shl => Op::Shl,
            Instr::Shr => Op::Shr,
            Instr::BitAnd => Op::BitAnd,
            Instr::BitOr => Op::BitOr,
            Instr::BitXor => Op::BitXor,
            Instr::Neg => Op::Neg,
            Instr::Not => Op::Not,
            Instr::BitNot => Op::BitNot,
            Instr::CmpLt => Op::CmpLt,
            Instr::CmpLe => Op::CmpLe,
            Instr::CmpGt => Op::CmpGt,
            Instr::CmpGe => Op::CmpGe,
            Instr::CmpEq => Op::CmpEq,
            Instr::CmpNe => Op::CmpNe,
            Instr::I2F => Op::I2F,
            Instr::F2I => Op::F2I,
            Instr::Jump(_) => Op::Jump,
            Instr::JumpIfZero(_) => Op::JumpIfZero,
            Instr::JumpIfNotZero(_) => Op::JumpIfNotZero,
            Instr::Call(..) => Op::Call,
            Instr::CallIntrinsic(..) => Op::CallIntrinsic,
            Instr::Ret => Op::Ret,
            Instr::RetVoid => Op::RetVoid,
            Instr::Nop => Op::Nop,
        }
    }

    /// Base execution cost in core cycles (P54C-flavoured CPI model).
    /// `Load`/`Store` report only issue cost; the memory system adds the
    /// hierarchy latency.
    pub fn base_cost(self) -> u64 {
        use Instr::*;
        match self {
            PushI(_) | PushF(_) | LocalGet(_) | LocalSet(_) | LocalMemAddr(_) | Dup | Pop
            | Swap | Rot3 | Nop => 1,
            Load(_) | Store(..) => 1,
            Add | Sub | BitAnd | BitOr | BitXor | Neg | Not | BitNot | CmpLt | CmpLe | CmpGt
            | CmpGe | CmpEq | CmpNe | Shl | Shr | I2F | F2I => 1,
            Mul => 4,
            Div | Rem => 24,
            Jump(_) | JumpIfZero(_) | JumpIfNotZero(_) => 1,
            Call(..) | CallIntrinsic(..) => 4,
            Ret | RetVoid => 3,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_resolution() {
        assert_eq!(Intrinsic::from_name("printf"), Some(Intrinsic::Printf));
        assert_eq!(Intrinsic::from_name("RCCE_ue"), Some(Intrinsic::RcceUe));
        assert_eq!(
            Intrinsic::from_name("RCCE_malloc"),
            Some(Intrinsic::RcceMpbMalloc)
        );
        assert_eq!(Intrinsic::from_name("unknown_fn"), None);
    }

    #[test]
    fn pure_intrinsics() {
        assert!(Intrinsic::Sqrt.is_pure());
        assert!(!Intrinsic::Printf.is_pure());
        assert!(!Intrinsic::RcceBarrier.is_pure());
    }

    #[test]
    fn division_is_expensive() {
        assert!(Instr::Div.base_cost() > Instr::Mul.base_cost());
        assert!(Instr::Mul.base_cost() > Instr::Add.base_cost());
    }

    #[test]
    fn opcodes_are_dense_and_complete() {
        assert_eq!(Op::ALL.len(), Op::COUNT);
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i, "discriminants must be dense");
        }
    }

    #[test]
    fn every_instr_maps_to_its_opcode() {
        use crate::value::MemKind;
        // One sample instruction per variant, in Op order.
        let samples: [Instr; Op::COUNT] = [
            Instr::PushI(1),
            Instr::PushF(1.0),
            Instr::LocalGet(0),
            Instr::LocalSet(0),
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Store(MemKind::I32, false),
            Instr::Dup,
            Instr::Pop,
            Instr::Swap,
            Instr::Rot3,
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::Div,
            Instr::Rem,
            Instr::Shl,
            Instr::Shr,
            Instr::BitAnd,
            Instr::BitOr,
            Instr::BitXor,
            Instr::Neg,
            Instr::Not,
            Instr::BitNot,
            Instr::CmpLt,
            Instr::CmpLe,
            Instr::CmpGt,
            Instr::CmpGe,
            Instr::CmpEq,
            Instr::CmpNe,
            Instr::I2F,
            Instr::F2I,
            Instr::Jump(0),
            Instr::JumpIfZero(0),
            Instr::JumpIfNotZero(0),
            Instr::Call(0, 0),
            Instr::CallIntrinsic(Intrinsic::Printf, 0),
            Instr::Ret,
            Instr::RetVoid,
            Instr::Nop,
        ];
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.op() as usize, i, "{s:?} maps to the wrong opcode");
        }
    }
}
