//! The CIR → bytecode compiler.
//!
//! Lowering decisions:
//!
//! * Scalar locals and parameters live in **register slots** (free access),
//!   modelling a compiler's register allocation. Locals whose address is
//!   taken, and local arrays, are **memory-resident** in the per-thread
//!   stack region so pointers to them work and their traffic is timed.
//! * Globals are memory-resident at fixed private addresses; constant
//!   initializers become a load-time data image.
//! * Pointer arithmetic is scaled at compile time using the *storage*
//!   stride of the element type.
//! * Calls to unknown names resolve to [`Intrinsic`]s; anything else is a
//!   compile error (no dynamic linking on the SCC).

use crate::instr::{Instr, Intrinsic};
use crate::value::MemKind;
use hsm_cir::ast::*;
use hsm_cir::types::CType;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Base address of the interned string table (private region).
pub const STRINGS_BASE: u64 = 0x0800_0000;
/// Base address of globals (private region).
pub const GLOBALS_BASE: u64 = 0x1000_0000;
/// Base address of per-thread stack frames (private region).
pub const STACKS_BASE: u64 = 0x2000_0000;
/// Stack region size per thread.
pub const STACK_SIZE: u64 = 0x0010_0000;
/// Base address of the private heap (`malloc`).
pub const HEAP_BASE: u64 = 0x4000_0000;

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    fn new(msg: impl Into<String>) -> Self {
        CompileError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// One memory-resident local of a compiled function: a named slice of the
/// frame's memory area. Register-allocated scalars have no entry — they
/// never touch simulated memory and are invisible to address-level tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameVar {
    /// Source name.
    pub name: String,
    /// Byte offset from the frame's memory base.
    pub offset: u32,
    /// Storage size in bytes.
    pub size: u32,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source name.
    pub name: String,
    /// Bytecode.
    pub code: Vec<Instr>,
    /// Register slot count (parameters occupy the first slots).
    pub n_regs: u16,
    /// Parameter count.
    pub n_params: u8,
    /// Bytes of memory-resident frame data.
    pub frame_mem: u32,
    /// Declared return type.
    pub ret: CType,
    /// Layout of the memory-resident locals within `frame_mem`, in
    /// allocation order (re-declarations in nested blocks append again).
    pub frame_vars: Vec<FrameVar>,
}

impl Function {
    /// The frame variable whose storage covers byte `offset` of the frame
    /// memory area (last match wins, mirroring lexical shadowing).
    pub fn frame_var_at(&self, offset: u32) -> Option<&FrameVar> {
        self.frame_vars
            .iter()
            .rev()
            .find(|v| offset >= v.offset && offset < v.offset + v.size)
    }
}

/// A compiled global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Absolute private address.
    pub addr: u64,
    /// Storage size in bytes.
    pub storage: usize,
}

/// A fully compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All functions; index = call target.
    pub funcs: Vec<Function>,
    /// Global variables.
    pub globals: Vec<GlobalVar>,
    /// Interned strings with their addresses.
    pub strings: Vec<(u64, String)>,
    /// Load-time private-memory image: (address, bytes).
    pub image: Vec<(u64, Vec<u8>)>,
    /// Index of the entry function (`main` or `RCCE_APP`).
    pub entry: u32,
}

impl Program {
    /// Looks up a function index by name.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalVar> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total bytecode length (diagnostics).
    pub fn code_len(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

/// Storage stride in bytes for one element of `ty` when laid out by this
/// compiler (differs from the C ABI only for pointers, which we store in
/// 8-byte cells).
pub fn storage_stride(ty: &CType) -> usize {
    MemKind::for_ctype(ty).bytes()
}

/// Total storage for a declared variable.
pub fn storage_size(ty: &CType) -> usize {
    match ty {
        CType::Array(inner, len) => len.unwrap_or(1) * storage_size(inner),
        other => storage_stride(other),
    }
}

/// Compiles a translation unit.
///
/// # Errors
///
/// Returns a [`CompileError`] for unsupported constructs (unknown call
/// targets, non-constant global initializers, missing entry point).
pub fn compile(tu: &TranslationUnit) -> Result<Program, CompileError> {
    Compiler::new(tu)?.run()
}

#[derive(Debug, Clone)]
enum Slot {
    Reg(u16, CType),
    Mem(u32, CType),
}

struct Compiler<'a> {
    tu: &'a TranslationUnit,
    func_index: HashMap<String, u32>,
    func_sigs: HashMap<String, (CType, Vec<CType>)>,
    globals: HashMap<String, (u64, CType)>,
    global_list: Vec<GlobalVar>,
    strings: Vec<(u64, String)>,
    str_next: u64,
    image: Vec<(u64, Vec<u8>)>,
}

impl<'a> Compiler<'a> {
    fn new(tu: &'a TranslationUnit) -> Result<Self, CompileError> {
        let mut func_index = HashMap::new();
        let mut func_sigs = HashMap::new();
        for (i, f) in tu.functions().enumerate() {
            func_index.insert(f.name.clone(), i as u32);
            func_sigs.insert(
                f.name.clone(),
                (
                    f.ret.clone(),
                    f.params.iter().map(|p| p.ty.clone()).collect(),
                ),
            );
        }
        // Prototypes provide signatures for intrinsic-like externs.
        for d in tu.global_decls() {
            for v in &d.vars {
                if let CType::Function { ret, params } = &v.ty {
                    func_sigs
                        .entry(v.name.clone())
                        .or_insert(((**ret).clone(), params.clone()));
                }
            }
        }

        let mut globals = HashMap::new();
        let mut global_list = Vec::new();
        let mut image = Vec::new();
        let mut next = GLOBALS_BASE;
        for d in tu.global_decls() {
            if d.storage == Storage::Typedef {
                continue;
            }
            for v in &d.vars {
                if matches!(v.ty, CType::Function { .. }) {
                    continue;
                }
                let size = storage_size(&v.ty).max(1);
                let addr = next;
                next += ((size + 7) & !7) as u64;
                globals.insert(v.name.clone(), (addr, v.ty.clone()));
                global_list.push(GlobalVar {
                    name: v.name.clone(),
                    ty: v.ty.clone(),
                    addr,
                    storage: size,
                });
                if let Some(init) = &v.init {
                    let bytes = const_init_bytes(init, &v.ty).ok_or_else(|| {
                        CompileError::new(format!(
                            "global `{}` has a non-constant initializer",
                            v.name
                        ))
                    })?;
                    image.push((addr, bytes));
                }
            }
        }

        Ok(Compiler {
            tu,
            func_index,
            func_sigs,
            globals,
            global_list,
            strings: Vec::new(),
            str_next: STRINGS_BASE,
            image,
        })
    }

    fn intern(&mut self, s: &str) -> u64 {
        for (addr, existing) in &self.strings {
            if existing == s {
                return *addr;
            }
        }
        let addr = self.str_next;
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.str_next += ((bytes.len() + 7) & !7) as u64;
        self.strings.push((addr, s.to_string()));
        self.image.push((addr, bytes));
        addr
    }

    fn run(mut self) -> Result<Program, CompileError> {
        let mut funcs = Vec::new();
        let fn_defs: Vec<&FunctionDef> = self.tu.functions().collect();
        for f in fn_defs {
            let compiled = FnCompiler::compile(&mut self, f)?;
            funcs.push(compiled);
        }
        let entry = self
            .func_index
            .get("main")
            .or_else(|| self.func_index.get("RCCE_APP"))
            .copied()
            .ok_or_else(|| CompileError::new("no `main` or `RCCE_APP` entry point"))?;
        Ok(Program {
            funcs,
            globals: self.global_list,
            strings: self.strings,
            image: self.image,
            entry,
        })
    }
}

/// Renders a constant initializer into bytes for the data image.
fn const_init_bytes(init: &Expr, ty: &CType) -> Option<Vec<u8>> {
    fn scalar_bytes(e: &Expr, ty: &CType) -> Option<Vec<u8>> {
        let kind = MemKind::for_ctype(ty);
        let mut mem = crate::data::ByteMemory::new();
        match (&e.kind, kind.is_float()) {
            (ExprKind::IntLit(v), false) => {
                mem.store(0, kind, crate::value::Value::I(*v));
            }
            (ExprKind::IntLit(v), true) => {
                mem.store(0, kind, crate::value::Value::F(*v as f64));
            }
            (ExprKind::FloatLit(v), true) => {
                mem.store(0, kind, crate::value::Value::F(*v));
            }
            (ExprKind::FloatLit(v), false) => {
                mem.store(0, kind, crate::value::Value::I(*v as i64));
            }
            (ExprKind::CharLit(c), _) => {
                mem.store(0, kind, crate::value::Value::I(*c as i64));
            }
            (ExprKind::Unary(UnaryOp::Neg, inner), _) => {
                let inner_bytes = scalar_bytes(inner, ty)?;
                let v = crate::data::ByteMemory::new();
                let mut m2 = v;
                m2.write_bytes(0, &inner_bytes);
                let loaded = m2.load(0, kind);
                let neg = match loaded {
                    crate::value::Value::I(i) => crate::value::Value::I(-i),
                    crate::value::Value::F(f) => crate::value::Value::F(-f),
                };
                mem.store(0, kind, neg);
            }
            _ => return None,
        }
        Some((0..kind.bytes() as u64).map(|i| mem.read_u8(i)).collect())
    }

    match ty {
        CType::Array(elem, len) => {
            let ExprKind::InitList(items) = &init.kind else {
                return None;
            };
            let stride = storage_stride(elem);
            let count = len.unwrap_or(items.len());
            let mut out = vec![0u8; count * stride];
            for (i, item) in items.iter().enumerate().take(count) {
                let b = scalar_bytes(item, elem)?;
                out[i * stride..i * stride + b.len()].copy_from_slice(&b);
            }
            Some(out)
        }
        scalar => scalar_bytes(init, scalar),
    }
}

struct FnCompiler<'a, 'b> {
    c: &'a mut Compiler<'b>,
    code: Vec<Instr>,
    scopes: Vec<HashMap<String, Slot>>,
    n_regs: u16,
    mem_off: u32,
    addr_taken: HashSet<String>,
    /// Break/continue scopes: loops accept both, switches only break.
    loops: Vec<BreakScope>,
    ret_ty: CType,
    frame_vars: Vec<FrameVar>,
}

/// A break/continue target scope.
struct BreakScope {
    breaks: Vec<usize>,
    /// `None` for switch scopes (continue passes through to the loop).
    continues: Option<Vec<usize>>,
}

impl BreakScope {
    fn loop_scope() -> Self {
        BreakScope {
            breaks: Vec::new(),
            continues: Some(Vec::new()),
        }
    }

    fn switch_scope() -> Self {
        BreakScope {
            breaks: Vec::new(),
            continues: None,
        }
    }
}

impl<'a, 'b> FnCompiler<'a, 'b> {
    fn compile(c: &'a mut Compiler<'b>, f: &FunctionDef) -> Result<Function, CompileError> {
        let mut addr_taken = HashSet::new();
        for s in &f.body {
            hsm_cir::visit::walk_exprs_in_stmt(s, &mut |e| {
                if let ExprKind::Unary(UnaryOp::Addr, inner) = &e.kind {
                    if let Some(base) = inner.base_variable() {
                        addr_taken.insert(base.to_string());
                    }
                }
            });
        }

        let mut fc = FnCompiler {
            c,
            code: Vec::new(),
            scopes: vec![HashMap::new()],
            n_regs: 0,
            mem_off: 0,
            addr_taken,
            loops: Vec::new(),
            ret_ty: f.ret.clone(),
            frame_vars: Vec::new(),
        };

        // Parameters: register slots; address-taken ones get a memory
        // shadow written in the prologue.
        for (i, p) in f.params.iter().enumerate() {
            let reg = fc.n_regs;
            fc.n_regs += 1;
            if fc.addr_taken.contains(&p.name) || p.ty.is_array() {
                let off = fc.alloc_mem(&p.ty);
                fc.record_frame_var(&p.name, off, &p.ty);
                fc.code.push(Instr::LocalMemAddr(off));
                fc.code.push(Instr::LocalGet(i as u16));
                fc.code.push(Instr::Store(MemKind::for_ctype(&p.ty), false));
                fc.define(&p.name, Slot::Mem(off, p.ty.clone()));
            } else {
                fc.define(&p.name, Slot::Reg(reg, p.ty.clone()));
            }
        }

        for s in &f.body {
            fc.stmt(s)?;
        }
        fc.code.push(Instr::RetVoid);

        Ok(Function {
            name: f.name.clone(),
            code: fc.code,
            n_regs: fc.n_regs,
            n_params: f.params.len() as u8,
            frame_mem: fc.mem_off,
            ret: f.ret.clone(),
            frame_vars: fc.frame_vars,
        })
    }

    fn record_frame_var(&mut self, name: &str, offset: u32, ty: &CType) {
        self.frame_vars.push(FrameVar {
            name: name.to_string(),
            offset,
            size: storage_size(ty).max(1) as u32,
        });
    }

    fn define(&mut self, name: &str, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), slot);
    }

    fn resolve(&self, name: &str) -> Option<Slot> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(s.clone());
            }
        }
        None
    }

    fn alloc_mem(&mut self, ty: &CType) -> u32 {
        let size = storage_size(ty).max(1) as u32;
        let off = self.mem_off;
        self.mem_off += (size + 7) & !7;
        off
    }

    // ------------------------------------------------------- statements --

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::Expr(None) => Ok(()),
            StmtKind::Expr(Some(e)) => {
                self.expr(e, false)?;
                Ok(())
            }
            StmtKind::Decl(d) => self.decl(d),
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for st in stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::If(cond, then, els) => {
                self.expr(cond, true)?;
                let jz = self.emit_patch(Instr::JumpIfZero(0));
                self.stmt(then)?;
                if let Some(e) = els {
                    let jend = self.emit_patch(Instr::Jump(0));
                    self.patch(jz);
                    self.stmt(e)?;
                    self.patch(jend);
                } else {
                    self.patch(jz);
                }
                Ok(())
            }
            StmtKind::While(cond, body) => {
                let head = self.code.len();
                self.expr(cond, true)?;
                let jz = self.emit_patch(Instr::JumpIfZero(0));
                self.loops.push(BreakScope::loop_scope());
                self.stmt(body)?;
                self.code.push(Instr::Jump(head as u32));
                let scope = self.loops.pop().expect("loop stack");
                self.patch(jz);
                let end = self.code.len() as u32;
                for b in scope.breaks {
                    self.set_target(b, end);
                }
                for c in scope.continues.expect("loop scope") {
                    self.set_target(c, head as u32);
                }
                Ok(())
            }
            StmtKind::DoWhile(body, cond) => {
                let head = self.code.len();
                self.loops.push(BreakScope::loop_scope());
                self.stmt(body)?;
                let cond_at = self.code.len();
                self.expr(cond, true)?;
                self.code.push(Instr::JumpIfNotZero(head as u32));
                let scope = self.loops.pop().expect("loop stack");
                let end = self.code.len() as u32;
                for b in scope.breaks {
                    self.set_target(b, end);
                }
                for c in scope.continues.expect("loop scope") {
                    self.set_target(c, cond_at as u32);
                }
                Ok(())
            }
            StmtKind::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                match init {
                    Some(ForInit::Decl(d)) => self.decl(d)?,
                    Some(ForInit::Expr(e)) => {
                        self.expr(e, false)?;
                    }
                    None => {}
                }
                let head = self.code.len();
                let jz = match cond {
                    Some(c) => {
                        self.expr(c, true)?;
                        Some(self.emit_patch(Instr::JumpIfZero(0)))
                    }
                    None => None,
                };
                self.loops.push(BreakScope::loop_scope());
                self.stmt(body)?;
                let step_at = self.code.len();
                if let Some(st) = step {
                    self.expr(st, false)?;
                }
                self.code.push(Instr::Jump(head as u32));
                let scope = self.loops.pop().expect("loop stack");
                if let Some(jz) = jz {
                    self.patch(jz);
                }
                let end = self.code.len() as u32;
                for b in scope.breaks {
                    self.set_target(b, end);
                }
                for c in scope.continues.expect("loop scope") {
                    self.set_target(c, step_at as u32);
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Switch(scrutinee, body) => self.switch(scrutinee, body),
            StmtKind::Case(_) | StmtKind::Default => {
                Err(CompileError::new("case/default label outside a switch"))
            }
            StmtKind::Return(e) => {
                match e {
                    Some(e) => {
                        let ty = self.expr(e, true)?;
                        self.convert(&ty, &self.ret_ty.clone());
                        self.code.push(Instr::Ret);
                    }
                    None => self.code.push(Instr::RetVoid),
                }
                Ok(())
            }
            StmtKind::Break => {
                let at = self.emit_patch(Instr::Jump(0));
                self.loops
                    .last_mut()
                    .ok_or_else(|| CompileError::new("break outside loop or switch"))?
                    .breaks
                    .push(at);
                Ok(())
            }
            StmtKind::Continue => {
                let at = self.emit_patch(Instr::Jump(0));
                // Continue skips switch scopes and targets the nearest loop.
                let scope = self
                    .loops
                    .iter_mut()
                    .rev()
                    .find(|l| l.continues.is_some())
                    .ok_or_else(|| CompileError::new("continue outside loop"))?;
                scope
                    .continues
                    .as_mut()
                    .expect("filtered on is_some")
                    .push(at);
                Ok(())
            }
        }
    }

    /// Compiles `switch (scrutinee) { case ...: ... }` with C fallthrough
    /// semantics: the dispatch header compares the scrutinee against each
    /// top-level `case` label in order, then jumps to `default:` (or past
    /// the switch). `break` exits; `continue` passes to the enclosing loop.
    fn switch(&mut self, scrutinee: &Expr, body: &[Stmt]) -> Result<(), CompileError> {
        let st = self.expr(scrutinee, true)?;
        self.convert(&st, &CType::Int);
        let tmp = self.n_regs;
        self.n_regs += 1;
        self.code.push(Instr::LocalSet(tmp));

        // Dispatch header: one conditional jump per top-level case label.
        let mut dispatch: Vec<(usize, usize)> = Vec::new(); // (body idx, patch site)
        let mut default_jump: Option<(usize, usize)> = None;
        for (i, stmt) in body.iter().enumerate() {
            match &stmt.kind {
                StmtKind::Case(v) => {
                    self.code.push(Instr::LocalGet(tmp));
                    self.code.push(Instr::PushI(*v));
                    self.code.push(Instr::CmpEq);
                    let at = self.emit_patch(Instr::JumpIfNotZero(0));
                    dispatch.push((i, at));
                }
                StmtKind::Default => {
                    if default_jump.is_some() {
                        return Err(CompileError::new("multiple default labels in switch"));
                    }
                    default_jump = Some((i, 0));
                }
                _ => {}
            }
        }
        let fallback = self.emit_patch(Instr::Jump(0));
        if let Some((i, _)) = default_jump {
            default_jump = Some((i, fallback));
        }

        // Body with labels resolved to code positions.
        self.scopes.push(HashMap::new());
        self.loops.push(BreakScope::switch_scope());
        let mut label_pos: Vec<(usize, u32)> = Vec::new();
        for (i, stmt) in body.iter().enumerate() {
            if matches!(stmt.kind, StmtKind::Case(_) | StmtKind::Default) {
                label_pos.push((i, self.code.len() as u32));
                continue;
            }
            self.stmt(stmt)?;
        }
        let scope = self.loops.pop().expect("switch scope");
        self.scopes.pop();
        let end = self.code.len() as u32;
        for b in scope.breaks {
            self.set_target(b, end);
        }
        for (i, at) in dispatch {
            let target = label_pos
                .iter()
                .find(|(li, _)| *li == i)
                .map(|(_, pos)| *pos)
                .expect("label recorded");
            self.set_target(at, target);
        }
        match default_jump {
            Some((i, at)) => {
                let target = label_pos
                    .iter()
                    .find(|(li, _)| *li == i)
                    .map(|(_, pos)| *pos)
                    .expect("default recorded");
                self.set_target(at, target);
            }
            None => self.set_target(fallback, end),
        }
        Ok(())
    }

    fn decl(&mut self, d: &Declaration) -> Result<(), CompileError> {
        for v in &d.vars {
            let memory_resident = v.ty.is_array() || self.addr_taken.contains(&v.name);
            if memory_resident {
                let off = self.alloc_mem(&v.ty);
                self.record_frame_var(&v.name, off, &v.ty);
                self.define(&v.name, Slot::Mem(off, v.ty.clone()));
                match (&v.init, &v.ty) {
                    (Some(init), CType::Array(elem, len)) => {
                        let ExprKind::InitList(items) = &init.kind else {
                            return Err(CompileError::new(format!(
                                "array `{}` initializer must be a brace list",
                                v.name
                            )));
                        };
                        let stride = storage_stride(elem) as u32;
                        let kind = MemKind::for_ctype(elem);
                        let count = len.unwrap_or(items.len());
                        // Zero-fill then write the provided elements.
                        for i in 0..count as u32 {
                            self.code.push(Instr::LocalMemAddr(off + i * stride));
                            let item = items.get(i as usize);
                            match item {
                                Some(item) => {
                                    let ty = self.expr(item, true)?;
                                    self.convert(&ty, elem);
                                }
                                None => {
                                    if kind.is_float() {
                                        self.code.push(Instr::PushF(0.0));
                                    } else {
                                        self.code.push(Instr::PushI(0));
                                    }
                                }
                            }
                            self.code.push(Instr::Store(kind, false));
                        }
                    }
                    (Some(init), scalar) => {
                        self.code.push(Instr::LocalMemAddr(off));
                        let ty = self.expr(init, true)?;
                        self.convert(&ty, scalar);
                        self.code
                            .push(Instr::Store(MemKind::for_ctype(scalar), false));
                    }
                    (None, _) => {}
                }
            } else {
                let reg = self.n_regs;
                self.n_regs += 1;
                self.define(&v.name, Slot::Reg(reg, v.ty.clone()));
                if let Some(init) = &v.init {
                    let ty = self.expr(init, true)?;
                    self.convert(&ty, &v.ty);
                    self.code.push(Instr::LocalSet(reg));
                }
            }
        }
        Ok(())
    }

    fn emit_patch(&mut self, instr: Instr) -> usize {
        self.code.push(instr);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        self.set_target(at, target);
    }

    fn set_target(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // ------------------------------------------------------ expressions --

    /// Emits conversion instructions taking a value of type `from` to
    /// type `to` (only the float/int boundary matters at runtime).
    fn convert(&mut self, from: &CType, to: &CType) {
        let ff = from.is_float();
        let tf = to.is_float();
        if ff && !tf {
            self.code.push(Instr::F2I);
        } else if !ff && tf {
            self.code.push(Instr::I2F);
        }
    }

    /// The static type of an expression, without emitting code.
    fn type_of(&self, e: &Expr) -> CType {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => CType::Int,
            ExprKind::CharLit(_) => CType::Char,
            ExprKind::FloatLit(_) => CType::Double,
            ExprKind::StrLit(_) => CType::Char.ptr_to(),
            ExprKind::Ident(name) => match self.resolve(name) {
                Some(Slot::Reg(_, t)) | Some(Slot::Mem(_, t)) => t,
                None => match self.c.globals.get(name) {
                    Some((_, t)) => t.clone(),
                    None => CType::Int,
                },
            },
            ExprKind::Unary(UnaryOp::Addr, inner) => self.type_of(inner).ptr_to(),
            ExprKind::Unary(UnaryOp::Deref, inner) => match self.type_of(inner) {
                CType::Pointer(t) | CType::Array(t, _) => *t,
                _ => CType::Int,
            },
            ExprKind::Unary(UnaryOp::Not, _) => CType::Int,
            ExprKind::Unary(_, inner) | ExprKind::PostIncDec(inner, _) => self.type_of(inner),
            ExprKind::Binary(op, l, r) => {
                if op.is_comparison() || matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr) {
                    return CType::Int;
                }
                let (tl, tr) = (self.type_of(l), self.type_of(r));
                if tl.is_pointer() || tl.is_array() {
                    tl.decay()
                } else if tr.is_pointer() || tr.is_array() {
                    tr.decay()
                } else if tl.is_float() || tr.is_float() {
                    CType::Double
                } else {
                    tl
                }
            }
            ExprKind::Assign(_, l, _) => self.type_of(l),
            ExprKind::Ternary(_, t, f) => {
                let (tt, tf_) = (self.type_of(t), self.type_of(f));
                if tt.is_float() || tf_.is_float() {
                    CType::Double
                } else {
                    tt
                }
            }
            ExprKind::Call(callee, _) => {
                if let Some(name) = callee.as_ident() {
                    if let Some((ret, _)) = self.c.func_sigs.get(name) {
                        return ret.clone();
                    }
                    match Intrinsic::from_name(name) {
                        Some(
                            Intrinsic::Sqrt
                            | Intrinsic::Fabs
                            | Intrinsic::Wtime
                            | Intrinsic::RcceWtime,
                        ) => return CType::Double,
                        Some(_) => return CType::Int,
                        None => {}
                    }
                }
                CType::Int
            }
            ExprKind::Index(base, _) => match self.type_of(base) {
                CType::Pointer(t) | CType::Array(t, _) => *t,
                _ => CType::Int,
            },
            ExprKind::Member(_, _, _) => CType::Int,
            ExprKind::Cast(t, _) => t.clone(),
            ExprKind::Comma(_, r) => self.type_of(r),
            ExprKind::InitList(_) => CType::Int,
        }
    }

    /// Compiles `e`; when `want` is true its value is left on the stack.
    /// Returns the expression's static type.
    fn expr(&mut self, e: &Expr, want: bool) -> Result<CType, CompileError> {
        let ty = self.expr_value(e, want)?;
        Ok(ty)
    }

    fn expr_value(&mut self, e: &Expr, want: bool) -> Result<CType, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                if want {
                    self.code.push(Instr::PushI(*v));
                }
                Ok(CType::Int)
            }
            ExprKind::CharLit(c) => {
                if want {
                    self.code.push(Instr::PushI(*c as i64));
                }
                Ok(CType::Char)
            }
            ExprKind::FloatLit(v) => {
                if want {
                    self.code.push(Instr::PushF(*v));
                }
                Ok(CType::Double)
            }
            ExprKind::StrLit(s) => {
                let addr = self.c.intern(s);
                if want {
                    self.code.push(Instr::PushI(addr as i64));
                }
                Ok(CType::Char.ptr_to())
            }
            ExprKind::Ident(name) => self.ident_value(name, want),
            ExprKind::SizeofType(t) => {
                if want {
                    self.code.push(Instr::PushI(t.mem_size() as i64));
                }
                Ok(CType::Int)
            }
            ExprKind::SizeofExpr(inner) => {
                let t = self.type_of(inner);
                if want {
                    self.code.push(Instr::PushI(t.mem_size() as i64));
                }
                Ok(CType::Int)
            }
            ExprKind::Cast(target, inner) => {
                let from = self.expr(inner, want)?;
                if want {
                    self.convert(&from, target);
                }
                Ok(target.clone())
            }
            ExprKind::Unary(op, inner) => self.unary(*op, inner, want),
            ExprKind::PostIncDec(inner, inc) => self.post_inc_dec(inner, *inc, want),
            ExprKind::Binary(op, l, r) => self.binary(*op, l, r, want),
            ExprKind::Assign(op, l, r) => self.assign(*op, l, r, want),
            ExprKind::Ternary(c, t, f) => {
                let result_ty = self.type_of(e);
                self.expr(c, true)?;
                let jz = self.emit_patch(Instr::JumpIfZero(0));
                let tt = self.expr(t, want)?;
                if want {
                    self.convert(&tt, &result_ty);
                }
                let jend = self.emit_patch(Instr::Jump(0));
                self.patch(jz);
                let tf = self.expr(f, want)?;
                if want {
                    self.convert(&tf, &result_ty);
                }
                self.patch(jend);
                Ok(result_ty)
            }
            ExprKind::Comma(l, r) => {
                self.expr(l, false)?;
                self.expr(r, want)
            }
            ExprKind::Call(callee, args) => self.call(callee, args, want),
            ExprKind::Index(base, idx) => {
                let elem = self.addr_of_index(base, idx)?;
                let kind = MemKind::for_ctype(&elem);
                if elem.is_array() {
                    // Multi-dimensional: the "value" is the decayed row
                    // address already on the stack.
                    if !want {
                        self.code.push(Instr::Pop);
                    }
                    return Ok(elem.decay());
                }
                self.code.push(Instr::Load(kind));
                if !want {
                    self.code.push(Instr::Pop);
                }
                Ok(elem)
            }
            ExprKind::Member(_, _, _) => {
                Err(CompileError::new("struct member access is not supported"))
            }
            ExprKind::InitList(_) => {
                Err(CompileError::new("brace initializer outside a declaration"))
            }
        }
    }

    fn ident_value(&mut self, name: &str, want: bool) -> Result<CType, CompileError> {
        if let Some(slot) = self.resolve(name) {
            return match slot {
                Slot::Reg(r, t) => {
                    if want {
                        self.code.push(Instr::LocalGet(r));
                    }
                    Ok(t)
                }
                Slot::Mem(off, t) => {
                    if t.is_array() {
                        if want {
                            self.code.push(Instr::LocalMemAddr(off));
                        }
                        Ok(t.decay())
                    } else {
                        if want {
                            self.code.push(Instr::LocalMemAddr(off));
                            self.code.push(Instr::Load(MemKind::for_ctype(&t)));
                        }
                        Ok(t)
                    }
                }
            };
        }
        if let Some((addr, t)) = self.c.globals.get(name).cloned() {
            if t.is_array() {
                if want {
                    self.code.push(Instr::PushI(addr as i64));
                }
                return Ok(t.decay());
            }
            if want {
                self.code.push(Instr::PushI(addr as i64));
                self.code.push(Instr::Load(MemKind::for_ctype(&t)));
            }
            return Ok(t);
        }
        if let Some(idx) = self.c.func_index.get(name) {
            if want {
                self.code.push(Instr::PushI(i64::from(*idx)));
            }
            return Ok(CType::Void.ptr_to());
        }
        // Library constants.
        match name {
            "NULL" | "RCCE_COMM_WORLD" => {
                if want {
                    self.code.push(Instr::PushI(0));
                }
                Ok(CType::Void.ptr_to())
            }
            _ => Err(CompileError::new(format!("unknown identifier `{name}`"))),
        }
    }

    /// Compiles the address of `base[idx]`, returning the element type.
    fn addr_of_index(&mut self, base: &Expr, idx: &Expr) -> Result<CType, CompileError> {
        let bt = self.expr(base, true)?; // pointer value (arrays decay)
        let elem = match &bt {
            CType::Pointer(t) => (**t).clone(),
            CType::Array(t, _) => (**t).clone(),
            _ => return Err(CompileError::new(format!("indexing non-pointer type {bt}"))),
        };
        let it = self.expr(idx, true)?;
        self.convert(&it, &CType::Int);
        let stride = storage_size(&elem).max(1);
        if stride != 1 {
            self.code.push(Instr::PushI(stride as i64));
            self.code.push(Instr::Mul);
        }
        self.code.push(Instr::Add);
        Ok(elem)
    }

    /// Compiles an lvalue's address onto the stack, returning the object
    /// type. Register locals have no address (the compiler guarantees
    /// address-taken locals are memory-resident).
    fn addr_of(&mut self, e: &Expr) -> Result<CType, CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = self.resolve(name) {
                    return match slot {
                        Slot::Mem(off, t) => {
                            self.code.push(Instr::LocalMemAddr(off));
                            Ok(t)
                        }
                        Slot::Reg(_, _) => Err(CompileError::new(format!(
                            "taking address of register local `{name}`"
                        ))),
                    };
                }
                if let Some((addr, t)) = self.c.globals.get(name).cloned() {
                    self.code.push(Instr::PushI(addr as i64));
                    return Ok(t);
                }
                // Library pseudo-objects whose address is opaque to the
                // program (e.g. `&RCCE_COMM_WORLD`).
                if matches!(name.as_str(), "NULL" | "RCCE_COMM_WORLD") {
                    self.code.push(Instr::PushI(0));
                    return Ok(CType::Int);
                }
                Err(CompileError::new(format!("unknown lvalue `{name}`")))
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                let t = self.expr(inner, true)?;
                match t {
                    CType::Pointer(p) => Ok(*p),
                    CType::Array(p, _) => Ok(*p),
                    other => Err(CompileError::new(format!(
                        "dereferencing non-pointer {other}"
                    ))),
                }
            }
            ExprKind::Index(base, idx) => self.addr_of_index(base, idx),
            ExprKind::Cast(_, inner) => self.addr_of(inner),
            _ => Err(CompileError::new("expression is not an lvalue")),
        }
    }

    fn unary(&mut self, op: UnaryOp, inner: &Expr, want: bool) -> Result<CType, CompileError> {
        match op {
            UnaryOp::Plus => self.expr(inner, want),
            UnaryOp::Neg => {
                let t = self.expr(inner, want)?;
                if want {
                    self.code.push(Instr::Neg);
                }
                Ok(t)
            }
            UnaryOp::Not => {
                self.expr(inner, want)?;
                if want {
                    self.code.push(Instr::Not);
                }
                Ok(CType::Int)
            }
            UnaryOp::BitNot => {
                let t = self.expr(inner, want)?;
                if want {
                    self.code.push(Instr::BitNot);
                }
                Ok(t)
            }
            UnaryOp::Addr => {
                let t = self.addr_of(inner)?;
                if !want {
                    self.code.push(Instr::Pop);
                }
                Ok(t.ptr_to())
            }
            UnaryOp::Deref => {
                let t = self.expr(inner, true)?;
                let pointee = match t {
                    CType::Pointer(p) | CType::Array(p, _) => *p,
                    other => {
                        return Err(CompileError::new(format!(
                            "dereferencing non-pointer {other}"
                        )))
                    }
                };
                self.code.push(Instr::Load(MemKind::for_ctype(&pointee)));
                if !want {
                    self.code.push(Instr::Pop);
                }
                Ok(pointee)
            }
            UnaryOp::PreInc | UnaryOp::PreDec => {
                let add = op == UnaryOp::PreInc;
                self.inc_dec_pre(inner, add, want)
            }
        }
    }

    /// `++x` / `--x` with optional result.
    fn inc_dec_pre(&mut self, inner: &Expr, add: bool, want: bool) -> Result<CType, CompileError> {
        // Register local fast path.
        if let ExprKind::Ident(name) = &inner.kind {
            if let Some(Slot::Reg(r, t)) = self.resolve(name) {
                self.code.push(Instr::LocalGet(r));
                self.push_one(&t);
                self.code.push(if add { Instr::Add } else { Instr::Sub });
                if want {
                    self.code.push(Instr::Dup);
                }
                self.code.push(Instr::LocalSet(r));
                return Ok(t);
            }
        }
        let t = self.addr_of(inner)?;
        let kind = MemKind::for_ctype(&t);
        self.code.push(Instr::Dup);
        self.code.push(Instr::Load(kind));
        self.push_one(&t);
        self.code.push(if add { Instr::Add } else { Instr::Sub });
        self.code.push(Instr::Store(kind, want));
        Ok(t)
    }

    fn post_inc_dec(&mut self, inner: &Expr, inc: bool, want: bool) -> Result<CType, CompileError> {
        if !want {
            return self.inc_dec_pre(inner, inc, false);
        }
        // Register local fast path.
        if let ExprKind::Ident(name) = &inner.kind {
            if let Some(Slot::Reg(r, t)) = self.resolve(name) {
                self.code.push(Instr::LocalGet(r)); // old
                self.code.push(Instr::Dup);
                self.push_one(&t);
                self.code.push(if inc { Instr::Add } else { Instr::Sub });
                self.code.push(Instr::LocalSet(r));
                return Ok(t);
            }
        }
        let t = self.addr_of(inner)?;
        let kind = MemKind::for_ctype(&t);
        // [a] -> [a a] -> [a old] -> [a old old] -> [old old a]
        // -> [old a old] -> [old a new] -> [old]
        self.code.push(Instr::Dup);
        self.code.push(Instr::Load(kind));
        self.code.push(Instr::Dup);
        self.code.push(Instr::Rot3);
        self.code.push(Instr::Swap);
        self.push_one(&t);
        self.code.push(if inc { Instr::Add } else { Instr::Sub });
        self.code.push(Instr::Store(kind, false));
        Ok(t)
    }

    /// Pushes 1 (or the pointer stride) of the right flavour for `t`.
    fn push_one(&mut self, t: &CType) {
        if t.is_float() {
            self.code.push(Instr::PushF(1.0));
        } else if let CType::Pointer(inner) = t {
            self.code
                .push(Instr::PushI(storage_size(inner).max(1) as i64));
        } else {
            self.code.push(Instr::PushI(1));
        }
    }

    fn binary(
        &mut self,
        op: BinaryOp,
        l: &Expr,
        r: &Expr,
        want: bool,
    ) -> Result<CType, CompileError> {
        use BinaryOp::*;
        if matches!(op, LogAnd | LogOr) {
            return self.logical(op, l, r, want);
        }
        let tl = self.expr(l, true)?;
        let tr = self.expr(r, true)?;
        // Pointer arithmetic scaling.
        let l_ptr = tl.is_pointer() || tl.is_array();
        let r_ptr = tr.is_pointer() || tr.is_array();
        let result = if matches!(op, Add | Sub) && l_ptr && !r_ptr {
            let stride = self.elem_stride(&tl);
            if stride != 1 {
                self.code.push(Instr::PushI(stride as i64));
                self.code.push(Instr::Mul);
            }
            self.emit_binop(op);
            tl.decay()
        } else if matches!(op, Add) && r_ptr && !l_ptr {
            let stride = self.elem_stride(&tr);
            if stride != 1 {
                self.code.push(Instr::Swap);
                self.code.push(Instr::PushI(stride as i64));
                self.code.push(Instr::Mul);
                self.code.push(Instr::Swap);
            }
            self.emit_binop(op);
            tr.decay()
        } else if matches!(op, Sub) && l_ptr && r_ptr {
            let stride = self.elem_stride(&tl);
            self.emit_binop(op);
            if stride != 1 {
                self.code.push(Instr::PushI(stride as i64));
                self.code.push(Instr::Div);
            }
            CType::Int
        } else {
            // Usual arithmetic conversions.
            let float = tl.is_float() || tr.is_float();
            if float {
                if !tr.is_float() {
                    self.code.push(Instr::I2F);
                }
                if !tl.is_float() {
                    self.code.push(Instr::Swap);
                    self.code.push(Instr::I2F);
                    self.code.push(Instr::Swap);
                }
            }
            self.emit_binop(op);
            if op.is_comparison() {
                CType::Int
            } else if float {
                CType::Double
            } else {
                // Keep the wider integer type.
                if tl == CType::Long || tr == CType::Long || tl == CType::LongLong {
                    CType::Long
                } else {
                    tl
                }
            }
        };
        if !want {
            self.code.push(Instr::Pop);
        }
        Ok(result)
    }

    fn elem_stride(&self, t: &CType) -> usize {
        match t {
            CType::Pointer(inner) | CType::Array(inner, _) => storage_size(inner).max(1),
            _ => 1,
        }
    }

    fn emit_binop(&mut self, op: BinaryOp) {
        use BinaryOp::*;
        self.code.push(match op {
            Add => Instr::Add,
            Sub => Instr::Sub,
            Mul => Instr::Mul,
            Div => Instr::Div,
            Rem => Instr::Rem,
            Shl => Instr::Shl,
            Shr => Instr::Shr,
            BitAnd => Instr::BitAnd,
            BitOr => Instr::BitOr,
            BitXor => Instr::BitXor,
            Lt => Instr::CmpLt,
            Le => Instr::CmpLe,
            Gt => Instr::CmpGt,
            Ge => Instr::CmpGe,
            Eq => Instr::CmpEq,
            Ne => Instr::CmpNe,
            LogAnd | LogOr => unreachable!("handled by logical()"),
        });
    }

    fn logical(
        &mut self,
        op: BinaryOp,
        l: &Expr,
        r: &Expr,
        want: bool,
    ) -> Result<CType, CompileError> {
        self.expr(l, true)?;
        match op {
            BinaryOp::LogAnd => {
                let jz = self.emit_patch(Instr::JumpIfZero(0));
                self.expr(r, true)?;
                let jz2 = self.emit_patch(Instr::JumpIfZero(0));
                self.code.push(Instr::PushI(1));
                let jend = self.emit_patch(Instr::Jump(0));
                self.patch(jz);
                self.patch(jz2);
                self.code.push(Instr::PushI(0));
                self.patch(jend);
            }
            BinaryOp::LogOr => {
                let jnz = self.emit_patch(Instr::JumpIfNotZero(0));
                self.expr(r, true)?;
                let jnz2 = self.emit_patch(Instr::JumpIfNotZero(0));
                self.code.push(Instr::PushI(0));
                let jend = self.emit_patch(Instr::Jump(0));
                self.patch(jnz);
                self.patch(jnz2);
                self.code.push(Instr::PushI(1));
                self.patch(jend);
            }
            _ => unreachable!(),
        }
        if !want {
            self.code.push(Instr::Pop);
        }
        Ok(CType::Int)
    }

    fn assign(
        &mut self,
        op: AssignOp,
        l: &Expr,
        r: &Expr,
        want: bool,
    ) -> Result<CType, CompileError> {
        // Register local destination.
        if let ExprKind::Ident(name) = &l.kind {
            if let Some(Slot::Reg(reg, t)) = self.resolve(name) {
                match op.binary_op() {
                    None => {
                        let rt = self.expr(r, true)?;
                        self.convert(&rt, &t);
                    }
                    Some(bop) => {
                        // Pointer compound add/sub on register pointer.
                        let wrapped_l = Expr {
                            id: l.id,
                            kind: ExprKind::Ident(name.clone()),
                            span: l.span,
                        };
                        let res = self.binary(bop, &wrapped_l, r, true)?;
                        self.convert(&res, &t);
                    }
                }
                if want {
                    self.code.push(Instr::Dup);
                }
                self.code.push(Instr::LocalSet(reg));
                return Ok(t);
            }
        }
        // Memory destination.
        let t = self.addr_of(l)?;
        let kind = MemKind::for_ctype(&t);
        match op.binary_op() {
            None => {
                let rt = self.expr(r, true)?;
                self.convert(&rt, &t);
            }
            Some(bop) => {
                // [a] -> [a a] -> [a old] -> [a old rhs] -> [a res]
                self.code.push(Instr::Dup);
                self.code.push(Instr::Load(kind));
                let rt = self.expr(r, true)?;
                // Usual conversions between old (type t) and rhs.
                let float = t.is_float() || rt.is_float();
                if float {
                    if !rt.is_float() {
                        self.code.push(Instr::I2F);
                    }
                    if !t.is_float() {
                        self.code.push(Instr::Swap);
                        self.code.push(Instr::I2F);
                        self.code.push(Instr::Swap);
                    }
                }
                // Pointer compound (p += n): scale.
                if (t.is_pointer()) && matches!(bop, BinaryOp::Add | BinaryOp::Sub) {
                    let stride = self.elem_stride(&t);
                    if stride != 1 {
                        self.code.push(Instr::PushI(stride as i64));
                        self.code.push(Instr::Mul);
                    }
                }
                self.emit_binop(bop);
                if float && !t.is_float() {
                    self.code.push(Instr::F2I);
                }
            }
        }
        self.code.push(Instr::Store(kind, want));
        Ok(t)
    }

    fn call(&mut self, callee: &Expr, args: &[Expr], want: bool) -> Result<CType, CompileError> {
        let Some(name) = callee.as_ident() else {
            return Err(CompileError::new("indirect calls are not supported"));
        };
        let name = name.to_string();

        // User-defined function with a body.
        if let Some(&idx) = self.c.func_index.get(&name) {
            let (ret, param_tys) = self.c.func_sigs[&name].clone();
            for (i, a) in args.iter().enumerate() {
                let at = self.expr(a, true)?;
                if let Some(pt) = param_tys.get(i) {
                    self.convert(&at, pt);
                }
            }
            self.code.push(Instr::Call(idx, args.len() as u8));
            if !want {
                self.code.push(Instr::Pop);
            }
            return Ok(ret);
        }

        // Intrinsic.
        if let Some(intr) = Intrinsic::from_name(&name) {
            // pthread_create's third argument is a function: it compiles
            // to the function index via ident_value.
            for a in args {
                self.expr(a, true)?;
            }
            self.code.push(Instr::CallIntrinsic(intr, args.len() as u8));
            if !want {
                self.code.push(Instr::Pop);
            }
            let ret = match intr {
                Intrinsic::Sqrt | Intrinsic::Fabs | Intrinsic::Wtime | Intrinsic::RcceWtime => {
                    CType::Double
                }
                Intrinsic::Malloc | Intrinsic::RcceShmalloc | Intrinsic::RcceMpbMalloc => {
                    CType::Void.ptr_to()
                }
                _ => CType::Int,
            };
            return Ok(ret);
        }

        Err(CompileError::new(format!("unknown function `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parse;

    fn compile_src(src: &str) -> Program {
        compile(&parse(src).expect("parse")).expect("compile")
    }

    #[test]
    fn compiles_minimal_main() {
        let p = compile_src("int main() { return 0; }");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.entry, 0);
        assert!(p.funcs[0].code.contains(&Instr::Ret));
    }

    #[test]
    fn globals_get_distinct_addresses_and_images() {
        let p = compile_src(
            "int a = 5; double b = 2.5; int c[3] = {1, 2, 3}; int main() { return 0; }",
        );
        let a = p.global("a").unwrap();
        let b = p.global("b").unwrap();
        let c = p.global("c").unwrap();
        assert!(a.addr >= GLOBALS_BASE);
        assert_ne!(a.addr, b.addr);
        assert_ne!(b.addr, c.addr);
        assert_eq!(c.storage, 12);
        // Images: a=5 little-endian, c={1,2,3}.
        let img_a = p.image.iter().find(|(ad, _)| *ad == a.addr).unwrap();
        assert_eq!(&img_a.1[..4], &[5, 0, 0, 0]);
        let img_c = p.image.iter().find(|(ad, _)| *ad == c.addr).unwrap();
        assert_eq!(img_c.1.len(), 12);
        assert_eq!(&img_c.1[4..8], &[2, 0, 0, 0]);
    }

    #[test]
    fn partial_array_init_zero_fills() {
        let p = compile_src("int sum[3] = {0}; int main() { return 0; }");
        let g = p.global("sum").unwrap();
        let img = p.image.iter().find(|(ad, _)| *ad == g.addr).unwrap();
        assert_eq!(img.1, vec![0u8; 12]);
    }

    #[test]
    fn scalar_locals_use_registers() {
        let p = compile_src("int main() { int x = 3; int y = x + 1; return y; }");
        let code = &p.funcs[0].code;
        assert!(code.iter().any(|i| matches!(i, Instr::LocalSet(_))));
        assert!(code.iter().any(|i| matches!(i, Instr::LocalGet(_))));
        // No memory traffic for register locals.
        assert!(!code.iter().any(|i| matches!(i, Instr::Load(_))));
        assert_eq!(p.funcs[0].frame_mem, 0);
    }

    #[test]
    fn address_taken_local_is_memory_resident() {
        let p = compile_src("int main() { int tmp = 1; int *p = &tmp; return *p; }");
        let f = &p.funcs[0];
        assert!(f.frame_mem >= 4);
        assert!(f.code.iter().any(|i| matches!(i, Instr::LocalMemAddr(_))));
    }

    #[test]
    fn local_array_is_memory_resident() {
        let p = compile_src("int main() { int a[4]; a[2] = 7; return a[2]; }");
        let f = &p.funcs[0];
        assert!(f.frame_mem >= 16);
        assert!(f
            .code
            .iter()
            .any(|i| matches!(i, Instr::Store(MemKind::I32, false))));
    }

    #[test]
    fn frame_vars_cover_memory_resident_locals() {
        let p = compile_src(
            "int main() { int a[4]; int tmp = 1; int *q = &tmp; a[0] = *q; return a[0]; }",
        );
        let f = &p.funcs[0];
        let names: Vec<&str> = f.frame_vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["a", "tmp"], "q stays in a register");
        assert_eq!(f.frame_var_at(0).unwrap().name, "a");
        assert_eq!(f.frame_var_at(12).unwrap().name, "a", "a[3] inside array");
        let tmp = f.frame_vars.iter().find(|v| v.name == "tmp").unwrap();
        assert_eq!(f.frame_var_at(tmp.offset).unwrap().name, "tmp");
        assert!(f.frame_var_at(f.frame_mem).is_none(), "past the frame");
    }

    #[test]
    fn frame_vars_include_address_taken_params() {
        let p = compile_src(
            "int deref(int x) { int *p = &x; return *p; } int main() { return deref(3); }",
        );
        let f = p.funcs.iter().find(|f| f.name == "deref").unwrap();
        assert_eq!(f.frame_vars.len(), 1);
        assert_eq!(f.frame_vars[0].name, "x");
        assert_eq!(f.frame_vars[0].size, 4);
    }

    #[test]
    fn array_indexing_scales_by_stride() {
        let p = compile_src("double d[8]; int main() { d[3] = 1.5; return 0; }");
        let code = &p.funcs[0].code;
        assert!(code.contains(&Instr::PushI(8)), "double stride 8: {code:?}");
        assert!(code.contains(&Instr::Store(MemKind::F64, false)));
    }

    #[test]
    fn int_division_stays_integral() {
        let p = compile_src("int main() { int a = 7; int b = 2; return a / b; }");
        let code = &p.funcs[0].code;
        assert!(code.contains(&Instr::Div));
        assert!(!code.contains(&Instr::I2F));
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        let p = compile_src(
            "int main() { double x = 4.0; int n = 2; double y = x / n; return (int)y; }",
        );
        let code = &p.funcs[0].code;
        assert!(code.contains(&Instr::I2F), "{code:?}");
        assert!(code.contains(&Instr::F2I));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let err = compile(&parse("int main() { mystery(); return 0; }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let err = compile(&parse("int main() { return nope; }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn function_name_as_argument_pushes_index() {
        let p = compile_src(
            "void *tf(void *x) { return x; } int main() { pthread_t t; pthread_create(&t, NULL, tf, NULL); return 0; }",
        );
        let main_idx = p.func_index("main").unwrap() as usize;
        let tf_idx = p.func_index("tf").unwrap();
        let code = &p.funcs[main_idx].code;
        assert!(code.contains(&Instr::PushI(i64::from(tf_idx))), "{code:?}");
        assert!(code
            .iter()
            .any(|i| matches!(i, Instr::CallIntrinsic(Intrinsic::PthreadCreate, 4))));
    }

    #[test]
    fn string_literals_are_interned_once() {
        let p = compile_src(r#"int main() { printf("x"); printf("x"); printf("y"); return 0; }"#);
        assert_eq!(p.strings.len(), 2);
    }

    #[test]
    fn entry_falls_back_to_rcce_app() {
        let p = compile_src("int RCCE_APP(int *argc, char **argv) { return 0; }");
        assert_eq!(p.entry, 0);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let err = compile(&parse("int f() { return 0; }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("entry point"));
    }

    #[test]
    fn loops_produce_backward_jumps() {
        let p = compile_src(
            "int main() { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s; }",
        );
        let code = &p.funcs[0].code;
        let has_back_jump = code.iter().enumerate().any(|(at, i)| match i {
            Instr::Jump(t) => (*t as usize) < at,
            _ => false,
        });
        assert!(has_back_jump, "{code:?}");
    }

    #[test]
    fn break_and_continue_patch_correctly() {
        // Infinite loop with a break: all jump targets must be in bounds.
        let p = compile_src(
            "int main() { int i = 0; while (1) { i++; if (i > 5) break; if (i == 2) continue; } return i; }",
        );
        let code = &p.funcs[0].code;
        for ins in code {
            if let Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) = ins {
                assert!((*t as usize) <= code.len(), "target out of bounds: {ins:?}");
            }
        }
    }

    #[test]
    fn logical_ops_short_circuit_structure() {
        let p = compile_src("int main() { int a = 1; int b = 0; return a && b || !a; }");
        let code = &p.funcs[0].code;
        assert!(code.iter().any(|i| matches!(i, Instr::JumpIfZero(_))));
        assert!(code.iter().any(|i| matches!(i, Instr::JumpIfNotZero(_))));
    }

    #[test]
    fn sizeof_is_c_abi_size() {
        let p = compile_src("int main() { return sizeof(int) + sizeof(double); }");
        let code = &p.funcs[0].code;
        assert!(code.contains(&Instr::PushI(4)));
        assert!(code.contains(&Instr::PushI(8)));
    }

    #[test]
    fn pointer_param_compiles() {
        let p = compile_src(
            "void fill(double *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 1.0; } int main() { return 0; }",
        );
        let fill = &p.funcs[p.func_index("fill").unwrap() as usize];
        assert_eq!(fill.n_params, 2);
        assert!(fill.code.contains(&Instr::Store(MemKind::F64, false)));
    }
}
