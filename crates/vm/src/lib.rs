//! # hsm-vm — bytecode compiler and suspendable VM for the C subset
//!
//! The role the Intel C compiler plays in the paper: it turns (original or
//! translated) C programs into something the experimental platform can
//! execute. Here that is a stack bytecode executed by a **suspendable** VM:
//! every memory access and library call is surfaced to the caller as a
//! [`vm::StepOutcome`], so the `hsm-exec` discrete-event engine can charge
//! simulated-SCC latencies and interleave up to 48 cores deterministically.
//!
//! * [`compile()`] — CIR → bytecode ([`compile::Program`]), register
//!   allocation for scalar locals, memory residence for arrays and
//!   address-taken locals, constant global images.
//! * [`opt`] — the optional bytecode optimizer ([`optimize`] at an
//!   [`OptLevel`]), run between compilation and execution.
//! * [`vm`] — the interpreter ([`vm::Vm`]).
//! * [`data`] — byte-addressable simulated memory contents.
//! * [`value`] / [`instr`] — runtime values and the instruction set.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hsm_vm::{compile::compile, compile::STACKS_BASE, data::ByteMemory, vm::{StepOutcome, Vm}};
//!
//! let tu = hsm_cir::parse("int main() { int s = 0; int i; for (i = 1; i <= 4; i++) s += i; return s; }")?;
//! let program = compile(&tu)?;
//! let mut vm = Vm::new(&program, program.entry, vec![], STACKS_BASE);
//! let mut mem = ByteMemory::new();
//! loop {
//!     match vm.run_until_event(&program)? {
//!         StepOutcome::Finished { exit } => {
//!             assert_eq!(exit.as_i(), 10);
//!             break;
//!         }
//!         StepOutcome::Load { addr, kind, .. } => vm.provide_load(mem.load(addr, kind)),
//!         StepOutcome::Store { addr, kind, value, .. } => {
//!             mem.store(addr, kind, value);
//!             vm.store_done();
//!         }
//!         _ => {}
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod data;
pub mod instr;
pub mod opt;
pub mod serial;
pub mod value;
pub mod vm;

pub use compile::{compile, CompileError, Program};
pub use instr::{Instr, Intrinsic, Op};
pub use opt::{optimize, optimize_with_stats, OptLevel, OptStats};
pub use serial::{parse_program, serialize_program, SerialError};
pub use value::{MemKind, Value};
pub use vm::{StepOutcome, UnitVm, Vm, VmError};
