//! Runtime values of the C-subset VM.

use std::fmt;

/// A runtime value: C integers/pointers live in `I`, floating point in `F`.
///
/// Pointers are plain addresses carried as integers; the compiler knows the
/// pointee type, so the VM never needs a tagged pointer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (also used for pointers and characters).
    I(i64),
    /// Floating point (`float` is widened to `double`).
    F(f64),
}

impl Value {
    /// The integer interpretation (floats truncate, as a C cast does).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
        }
    }

    /// The floating interpretation.
    pub fn as_f(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    /// The address interpretation.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative (never a valid address).
    pub fn as_addr(self) -> u64 {
        let v = self.as_i();
        assert!(v >= 0, "negative address {v}");
        v as u64
    }

    /// C truthiness.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    /// Whether either operand is floating (C usual arithmetic conversion).
    pub fn promotes_to_f(self, other: Value) -> bool {
        matches!(self, Value::F(_)) || matches!(other, Value::F(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

/// Memory access widths/kinds used by `Load`/`Store`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// 1-byte integer.
    I8,
    /// 2-byte integer.
    I16,
    /// 4-byte integer.
    I32,
    /// 8-byte integer.
    I64,
    /// 4-byte float (widened to f64 in registers).
    F32,
    /// 8-byte float.
    F64,
}

impl MemKind {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            MemKind::I8 => 1,
            MemKind::I16 => 2,
            MemKind::I32 | MemKind::F32 => 4,
            MemKind::I64 | MemKind::F64 => 8,
        }
    }

    /// Whether loads of this kind produce a float value.
    pub fn is_float(self) -> bool {
        matches!(self, MemKind::F32 | MemKind::F64)
    }

    /// The kind for a C type (pointers are 4-byte integers on the SCC's
    /// IA-32 cores, but we carry them in 8-byte cells for simplicity of
    /// the private address space — the *timing* uses the C size).
    pub fn for_ctype(ty: &hsm_cir::types::CType) -> MemKind {
        use hsm_cir::types::CType::*;
        match ty {
            Char => MemKind::I8,
            Short => MemKind::I16,
            Int | UInt => MemKind::I32,
            Long | ULong => MemKind::I64,
            LongLong => MemKind::I64,
            Float => MemKind::F32,
            Double => MemKind::F64,
            Pointer(_) | Array(..) | Function { .. } | Named(_) | Void => MemKind::I64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::types::CType;

    #[test]
    fn conversions_match_c_semantics() {
        assert_eq!(Value::F(3.9).as_i(), 3);
        assert_eq!(Value::I(3).as_f(), 3.0);
        assert!(Value::I(1).is_truthy());
        assert!(!Value::I(0).is_truthy());
        assert!(!Value::F(0.0).is_truthy());
    }

    #[test]
    fn promotion_rules() {
        assert!(Value::I(1).promotes_to_f(Value::F(1.0)));
        assert!(Value::F(1.0).promotes_to_f(Value::I(1)));
        assert!(!Value::I(1).promotes_to_f(Value::I(2)));
    }

    #[test]
    fn memkind_widths() {
        assert_eq!(MemKind::I8.bytes(), 1);
        assert_eq!(MemKind::I32.bytes(), 4);
        assert_eq!(MemKind::F64.bytes(), 8);
        assert!(MemKind::F32.is_float());
        assert!(!MemKind::I64.is_float());
    }

    #[test]
    fn ctype_mapping() {
        assert_eq!(MemKind::for_ctype(&CType::Int), MemKind::I32);
        assert_eq!(MemKind::for_ctype(&CType::Double), MemKind::F64);
        assert_eq!(MemKind::for_ctype(&CType::Int.ptr_to()), MemKind::I64);
        assert_eq!(MemKind::for_ctype(&CType::Char), MemKind::I8);
    }

    #[test]
    #[should_panic(expected = "negative address")]
    fn negative_address_panics() {
        let _ = Value::I(-1).as_addr();
    }
}
