//! The bytecode optimizer: an optional stage between [`crate::compile()`]
//! and execution.
//!
//! [`optimize`] rewrites a compiled [`Program`] at a chosen [`OptLevel`]
//! without changing anything a run can observe: program output, exit
//! codes, synchronization behaviour and sharing-oracle verdicts are
//! byte-identical across levels (the root `opt_levels.rs` differential
//! suite pins this over the whole corpus, under every execution model).
//!
//! # Passes
//!
//! | pass                  | level | what it does |
//! |-----------------------|-------|--------------|
//! | constant folding      | O1    | folds `PushI 2; PushI 3; Add` → `PushI 5` (exact VM semantics: wrapping integer ops, C float promotion), propagates block-local register constants, resolves constant branches, folds frame-address arithmetic, cancels `Dup`/`Pop` pairs |
//! | jump simplification   | O1    | threads jump-to-jump chains, deletes jumps to the next instruction, rewrites conditional jumps to the fall-through as `Pop` |
//! | dead code elimination | O1    | drops unreachable instructions, `Nop`s, and stores to registers never read |
//! | strength reduction    | O2    | `x * 2^k` → `x << k` and integer identities (`x+0`, `x*1`, `x/1`, `x<<0`), gated on a whole-function register type analysis proving the operand is an integer |
//! | common subexpressions | O2    | block-local value numbering over pure register/constant expressions; a repeated expression is captured once (`Dup; LocalSet`) and re-read (`LocalGet`) |
//! | load forwarding       | O2    | block-local reuse of loads from **non-escaping private stack slots only** — never globals, never computed addresses, never across calls or synchronization intrinsics |
//!
//! # Soundness against shared memory
//!
//! The VM interleaves up to 48 units at instruction granularity, so the
//! optimizer must assume another thread can write shared memory between
//! *any* two instructions. Every pass therefore follows three rules:
//!
//! 1. **Loads and stores through the memory system are never deleted,
//!    duplicated or reordered** — except for load forwarding, which is
//!    restricted to frame-stack slots whose address provably never
//!    escapes the function (so no other thread can hold a pointer to
//!    them) and is additionally killed at every call and non-pure
//!    intrinsic (every synchronization operation is an intrinsic).
//! 2. **Faults are preserved**: an integer division by a constant zero is
//!    left in place so the run still traps exactly where the unoptimized
//!    program would.
//! 3. **Rewrites are position-stable**: each original instruction is
//!    replaced by zero or more instructions at the same position, jump
//!    targets are remapped through the rebuilt index map, and
//!    multi-instruction patterns are only rewritten when no jump lands in
//!    their interior.
//!
//! See `docs/OPTIMIZER.md` for the worked example and the full soundness
//! argument per pass.

use crate::compile::{FrameVar, Program};
use crate::instr::Instr;
use crate::value::Value;
use std::collections::HashMap;

/// How aggressively [`optimize`] rewrites a program.
///
/// Levels are cumulative: `O1` ⊂ `O2`. `O0` returns the program
/// untouched, which keeps it the safe default everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// No optimization: the compiler's output runs as emitted.
    #[default]
    O0,
    /// Constant folding, jump simplification and dead-code elimination.
    O1,
    /// Everything in `O1` plus strength reduction, common-subexpression
    /// elimination and private-stack load forwarding.
    O2,
}

impl OptLevel {
    /// Every level, in increasing aggressiveness.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// Stable label used by manifests and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
        }
    }

    /// Parses a label produced by [`OptLevel::label`] (case-insensitive,
    /// the bare digit is also accepted).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "O0" | "o0" | "0" => Some(OptLevel::O0),
            "O1" | "o1" | "1" => Some(OptLevel::O1),
            "O2" | "o2" | "2" => Some(OptLevel::O2),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static before/after sizes reported by [`optimize_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Total instruction count before optimization.
    pub instrs_before: usize,
    /// Total instruction count after optimization.
    pub instrs_after: usize,
}

/// Bounded number of pass-pipeline rounds per function; each round runs
/// every enabled pass once and the loop stops early at a fixpoint.
const MAX_ROUNDS: usize = 6;

/// Optimizes a compiled program at `level`. `O0` is an exact copy.
pub fn optimize(program: &Program, level: OptLevel) -> Program {
    optimize_with_stats(program, level).0
}

/// [`optimize`] plus static instruction-count statistics.
pub fn optimize_with_stats(program: &Program, level: OptLevel) -> (Program, OptStats) {
    let before = program.code_len();
    let mut out = program.clone();
    if level == OptLevel::O0 {
        return (
            out,
            OptStats {
                instrs_before: before,
                instrs_after: before,
            },
        );
    }
    for func in &mut out.funcs {
        let mut code = std::mem::take(&mut func.code);
        let mut n_regs = func.n_regs;
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            changed |= apply(&mut code, fold_pass);
            changed |= apply(&mut code, |c, _| jump_pass(c));
            changed |= apply(&mut code, |c, _| dce_pass(c));
            if level >= OptLevel::O2 {
                changed |= apply(&mut code, |c, l| strength_pass(c, l, func.n_params, n_regs));
                changed |= apply(&mut code, |c, l| cse_pass(c, l, &mut n_regs));
                changed |= apply(&mut code, |c, l| {
                    forward_loads_pass(c, l, &func.frame_vars, &mut n_regs)
                });
            }
            if !changed {
                break;
            }
        }
        func.code = code;
        func.n_regs = n_regs;
    }
    let after = out.code_len();
    (
        out,
        OptStats {
            instrs_before: before,
            instrs_after: after,
        },
    )
}

// ----------------------------------------------------- infrastructure --

/// Per-index replacement plan: `None` keeps the original instruction,
/// `Some(seq)` substitutes zero or more instructions at that position.
struct Patch {
    repl: Vec<Option<Vec<Instr>>>,
    changed: bool,
}

impl Patch {
    fn new(len: usize) -> Self {
        Patch {
            repl: vec![None; len],
            changed: false,
        }
    }

    /// Plans a replacement. The first plan per index wins; later plans
    /// for an already-claimed index are rejected (returns `false`).
    fn set(&mut self, i: usize, seq: Vec<Instr>) -> bool {
        if self.repl[i].is_some() {
            return false;
        }
        self.repl[i] = Some(seq);
        self.changed = true;
        true
    }

    fn is_set(&self, i: usize) -> bool {
        self.repl[i].is_some()
    }
}

/// Jump-target leader map: `leaders[i]` is true when some jump targets
/// index `i`. Multi-instruction rewrites must not span a leader, so a
/// jump can never land in the middle of a replaced pattern.
fn leaders(code: &[Instr]) -> Vec<bool> {
    let mut l = vec![false; code.len() + 1];
    for ins in code {
        if let Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) = ins {
            l[*t as usize] = true;
        }
    }
    l
}

/// Rebuilds `code` under `patch`, remapping every jump target through the
/// old-index → new-index map. A target whose instruction was deleted maps
/// to the next surviving position, which preserves semantics because
/// deletions are always part of a pattern rewrite anchored at the
/// target's own position.
fn apply_patch(code: &[Instr], patch: &Patch) -> Vec<Instr> {
    let mut new_index = Vec::with_capacity(code.len() + 1);
    let mut pos = 0usize;
    for r in &patch.repl {
        new_index.push(pos);
        pos += r.as_ref().map_or(1, Vec::len);
    }
    new_index.push(pos);
    let remap = |t: u32| new_index[t as usize] as u32;
    let mut out = Vec::with_capacity(pos);
    let mut emit = |ins: Instr| {
        out.push(match ins {
            Instr::Jump(t) => Instr::Jump(remap(t)),
            Instr::JumpIfZero(t) => Instr::JumpIfZero(remap(t)),
            Instr::JumpIfNotZero(t) => Instr::JumpIfNotZero(remap(t)),
            other => other,
        });
    };
    for (i, ins) in code.iter().enumerate() {
        match &patch.repl[i] {
            Some(seq) => seq.iter().for_each(|&x| emit(x)),
            None => emit(*ins),
        }
    }
    out
}

/// Runs one pass and applies its patch; returns whether anything changed.
fn apply(code: &mut Vec<Instr>, pass: impl FnOnce(&[Instr], &[bool]) -> Patch) -> bool {
    let l = leaders(code);
    let patch = pass(code, &l);
    if !patch.changed {
        return false;
    }
    *code = apply_patch(code, &patch);
    true
}

/// The constant pushed for a folded value.
fn push_const(v: Value) -> Instr {
    match v {
        Value::I(i) => Instr::PushI(i),
        Value::F(f) => Instr::PushF(f),
    }
}

/// The constant an instruction pushes, if it is a constant push.
fn const_of(ins: Instr) -> Option<Value> {
    match ins {
        Instr::PushI(i) => Some(Value::I(i)),
        Instr::PushF(f) => Some(Value::F(f)),
        _ => None,
    }
}

/// Whether an instruction pushes exactly one value with no side effects
/// (so a `Pop` right after it cancels both).
fn is_pure_push(ins: Instr) -> bool {
    matches!(
        ins,
        Instr::PushI(_) | Instr::PushF(_) | Instr::LocalGet(_) | Instr::LocalMemAddr(_)
    )
}

// --------------------------------------------- constant-fold semantics --
//
// These mirror the VM's `arith`/`compare`/bitop handlers exactly
// (wrapping integer arithmetic, C float promotion, truthiness); the
// `folds_match_vm_arithmetic` test below cross-checks them against a
// running VM. Folding must be *bit-identical* to execution, or the
// differential harness across opt levels would catch the divergence.

/// Folds a binary arithmetic op; `None` when the fold must not happen
/// (integer division by zero stays in the code so the run still traps).
fn fold_arith(op: Instr, l: Value, r: Value) -> Option<Value> {
    if l.promotes_to_f(r) {
        let (a, b) = (l.as_f(), r.as_f());
        Some(Value::F(match op {
            Instr::Add => a + b,
            Instr::Sub => a - b,
            Instr::Mul => a * b,
            Instr::Div => a / b,
            Instr::Rem => a % b,
            _ => return None,
        }))
    } else {
        let (a, b) = (l.as_i(), r.as_i());
        if matches!(op, Instr::Div | Instr::Rem) && b == 0 {
            return None; // preserve the runtime fault
        }
        Some(Value::I(match op {
            Instr::Add => a.wrapping_add(b),
            Instr::Sub => a.wrapping_sub(b),
            Instr::Mul => a.wrapping_mul(b),
            Instr::Div => a.wrapping_div(b),
            Instr::Rem => a.wrapping_rem(b),
            _ => return None,
        }))
    }
}

/// Folds a comparison (C usual arithmetic conversions, result 0/1).
fn fold_compare(op: Instr, l: Value, r: Value) -> Option<Value> {
    let res = if l.promotes_to_f(r) {
        let (a, b) = (l.as_f(), r.as_f());
        match op {
            Instr::CmpLt => a < b,
            Instr::CmpLe => a <= b,
            Instr::CmpGt => a > b,
            Instr::CmpGe => a >= b,
            Instr::CmpEq => a == b,
            Instr::CmpNe => a != b,
            _ => return None,
        }
    } else {
        let (a, b) = (l.as_i(), r.as_i());
        match op {
            Instr::CmpLt => a < b,
            Instr::CmpLe => a <= b,
            Instr::CmpGt => a > b,
            Instr::CmpGe => a >= b,
            Instr::CmpEq => a == b,
            Instr::CmpNe => a != b,
            _ => return None,
        }
    };
    Some(Value::I(i64::from(res)))
}

/// Folds a bitwise op (both operands coerce to integers, shifts wrap).
fn fold_bitop(op: Instr, l: Value, r: Value) -> Option<Value> {
    let (a, b) = (l.as_i(), r.as_i());
    Some(Value::I(match op {
        Instr::Shl => a.wrapping_shl(b as u32),
        Instr::Shr => a.wrapping_shr(b as u32),
        Instr::BitAnd => a & b,
        Instr::BitOr => a | b,
        Instr::BitXor => a ^ b,
        _ => return None,
    }))
}

/// Folds any binary operator over two constants.
fn fold_binary(op: Instr, l: Value, r: Value) -> Option<Value> {
    match op {
        Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem => fold_arith(op, l, r),
        Instr::CmpLt | Instr::CmpLe | Instr::CmpGt | Instr::CmpGe | Instr::CmpEq | Instr::CmpNe => {
            fold_compare(op, l, r)
        }
        Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => {
            fold_bitop(op, l, r)
        }
        _ => None,
    }
}

/// Folds a unary operator over a constant.
fn fold_unary(op: Instr, v: Value) -> Option<Value> {
    Some(match op {
        Instr::Neg => match v {
            Value::I(i) => Value::I(i.wrapping_neg()),
            Value::F(f) => Value::F(-f),
        },
        Instr::Not => Value::I(i64::from(!v.is_truthy())),
        Instr::BitNot => Value::I(!v.as_i()),
        Instr::I2F => Value::F(v.as_f()),
        Instr::F2I => Value::I(v.as_i()),
        _ => return None,
    })
}

// -------------------------------------------------------- fold pass (O1) --

/// Constant folding + block-local register constant propagation +
/// constant branches + frame-address folding + `Dup`/`Pop` cancellation.
fn fold_pass(code: &[Instr], leaders: &[bool]) -> Patch {
    let mut p = Patch::new(code.len());
    // Block-local register constants. Registers are strictly per-frame
    // (calls allocate fresh slots and restore on return), so calls do
    // not invalidate the map; only jump targets (unknown predecessors)
    // and non-constant stores do.
    let mut regs: HashMap<u16, Value> = HashMap::new();
    let mut i = 0;
    while i < code.len() {
        if leaders[i] {
            regs.clear();
        }
        let free2 = i + 1 < code.len() && !leaders[i + 1];
        let free3 = free2 && i + 2 < code.len() && !leaders[i + 2];

        // [c1, c2, binop] → [folded]  and  [c1, c2, Swap] → [c2, c1].
        if free3 {
            if let (Some(a), Some(b)) = (const_of(code[i]), const_of(code[i + 1])) {
                if code[i + 2] == Instr::Swap {
                    p.set(i, vec![push_const(b)]);
                    p.set(i + 1, vec![push_const(a)]);
                    p.set(i + 2, vec![]);
                    i += 3;
                    continue;
                }
                if let Some(v) = fold_binary(code[i + 2], a, b) {
                    p.set(i, vec![push_const(v)]);
                    p.set(i + 1, vec![]);
                    p.set(i + 2, vec![]);
                    i += 3;
                    continue;
                }
            }
            // [LocalMemAddr off, PushI c, Add] → [LocalMemAddr off+c]
            // (constant indexing into a frame array).
            if let (Instr::LocalMemAddr(off), Instr::PushI(c), Instr::Add) =
                (code[i], code[i + 1], code[i + 2])
            {
                let sum = i64::from(off) + c;
                if (0..=i64::from(u32::MAX)).contains(&sum) {
                    p.set(i, vec![Instr::LocalMemAddr(sum as u32)]);
                    p.set(i + 1, vec![]);
                    p.set(i + 2, vec![]);
                    i += 3;
                    continue;
                }
            }
        }

        if free2 {
            // [c, unop] → [folded];  [c, JumpIf*] → [Jump] or nothing.
            if let Some(v) = const_of(code[i]) {
                if let Some(folded) = fold_unary(code[i + 1], v) {
                    p.set(i, vec![push_const(folded)]);
                    p.set(i + 1, vec![]);
                    i += 2;
                    continue;
                }
                match code[i + 1] {
                    Instr::JumpIfZero(t) => {
                        p.set(
                            i,
                            if v.is_truthy() {
                                vec![]
                            } else {
                                vec![Instr::Jump(t)]
                            },
                        );
                        p.set(i + 1, vec![]);
                        i += 2;
                        continue;
                    }
                    Instr::JumpIfNotZero(t) => {
                        p.set(
                            i,
                            if v.is_truthy() {
                                vec![Instr::Jump(t)]
                            } else {
                                vec![]
                            },
                        );
                        p.set(i + 1, vec![]);
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            // [Dup, Pop] and [pure push, Pop] cancel.
            if code[i + 1] == Instr::Pop && (code[i] == Instr::Dup || is_pure_push(code[i])) {
                p.set(i, vec![]);
                p.set(i + 1, vec![]);
                i += 2;
                continue;
            }
        }

        match code[i] {
            // A register known to hold a constant reads as that constant.
            Instr::LocalGet(r) => {
                if let Some(&v) = regs.get(&r) {
                    p.set(i, vec![push_const(v)]);
                }
                i += 1;
            }
            // [push c, LocalSet r] records the constant (the store itself
            // stays; DCE removes it later if the register is never read).
            ins if const_of(ins).is_some() && free2 => {
                if let Instr::LocalSet(r) = code[i + 1] {
                    regs.insert(r, const_of(ins).expect("checked const"));
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Instr::LocalSet(r) => {
                regs.remove(&r);
                i += 1;
            }
            _ => i += 1,
        }
    }
    p
}

// -------------------------------------------------------- jump pass (O1) --

/// Follows a jump-to-jump chain to its final target (bounded, so jump
/// cycles terminate harmlessly).
fn chase(code: &[Instr], mut t: u32) -> u32 {
    for _ in 0..code.len() {
        match code.get(t as usize) {
            Some(Instr::Jump(u)) if *u != t => t = *u,
            _ => break,
        }
    }
    t
}

/// Jump threading, jump-to-next deletion, and conditional-jump-to-next →
/// `Pop` (the condition still has to leave the stack).
fn jump_pass(code: &[Instr]) -> Patch {
    let mut p = Patch::new(code.len());
    for (i, ins) in code.iter().enumerate() {
        let next = (i + 1) as u32;
        match *ins {
            Instr::Jump(t) => {
                let t2 = chase(code, t);
                if t2 == next {
                    p.set(i, vec![]);
                } else if t2 != t {
                    p.set(i, vec![Instr::Jump(t2)]);
                }
            }
            Instr::JumpIfZero(t) => {
                let t2 = chase(code, t);
                if t2 == next {
                    p.set(i, vec![Instr::Pop]);
                } else if t2 != t {
                    p.set(i, vec![Instr::JumpIfZero(t2)]);
                }
            }
            Instr::JumpIfNotZero(t) => {
                let t2 = chase(code, t);
                if t2 == next {
                    p.set(i, vec![Instr::Pop]);
                } else if t2 != t {
                    p.set(i, vec![Instr::JumpIfNotZero(t2)]);
                }
            }
            _ => {}
        }
    }
    p
}

// --------------------------------------------------------- DCE pass (O1) --

/// Unreachable-code removal, `Nop` removal, and stores to registers the
/// function never reads (`LocalSet` → `Pop`, keeping the stack effect).
fn dce_pass(code: &[Instr]) -> Patch {
    let mut p = Patch::new(code.len());
    // Reachability from the entry.
    let mut reachable = vec![false; code.len()];
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        if i >= code.len() || reachable[i] {
            continue;
        }
        reachable[i] = true;
        match code[i] {
            Instr::Jump(t) => work.push(t as usize),
            Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => {
                work.push(t as usize);
                work.push(i + 1);
            }
            Instr::Ret | Instr::RetVoid => {}
            _ => work.push(i + 1),
        }
    }
    // Registers that are ever read.
    let mut read = std::collections::HashSet::new();
    for ins in code {
        if let Instr::LocalGet(r) = ins {
            read.insert(*r);
        }
    }
    for (i, ins) in code.iter().enumerate() {
        if !reachable[i] {
            p.set(i, vec![]);
            continue;
        }
        match *ins {
            Instr::Nop => {
                p.set(i, vec![]);
            }
            Instr::LocalSet(r) if !read.contains(&r) => {
                p.set(i, vec![Instr::Pop]);
            }
            _ => {}
        }
    }
    p
}

// -------------------------------------------------- type analysis (O2) --

/// Abstract value type for the strength-reduction proofs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// Provably `Value::I`.
    Int,
    /// Provably `Value::F`.
    Float,
    /// Could be either.
    Unknown,
}

fn meet(a: Ty, b: Ty) -> Ty {
    if a == b {
        a
    } else {
        Ty::Unknown
    }
}

/// Simulates one instruction over the abstract type stack. `set` observes
/// every `LocalSet`'s stored type.
fn sim_types(ins: Instr, stack: &mut Vec<Ty>, reg_ty: &[Ty], mut set: impl FnMut(u16, Ty)) {
    let pop = |stack: &mut Vec<Ty>| stack.pop().unwrap_or(Ty::Unknown);
    match ins {
        Instr::PushI(_) | Instr::LocalMemAddr(_) => stack.push(Ty::Int),
        Instr::PushF(_) => stack.push(Ty::Float),
        Instr::LocalGet(r) => stack.push(reg_ty.get(r as usize).copied().unwrap_or(Ty::Unknown)),
        Instr::LocalSet(r) => {
            let t = pop(stack);
            set(r, t);
        }
        Instr::Load(k) => {
            pop(stack);
            stack.push(if k.is_float() { Ty::Float } else { Ty::Int });
        }
        Instr::Store(_, keep) => {
            let v = pop(stack);
            pop(stack);
            if keep {
                // Store(keep) re-pushes the original, pre-narrowing value.
                stack.push(v);
            }
        }
        Instr::Dup => {
            let t = stack.last().copied().unwrap_or(Ty::Unknown);
            stack.push(t);
        }
        Instr::Pop => {
            pop(stack);
        }
        Instr::Swap => {
            let b = pop(stack);
            let a = pop(stack);
            stack.push(b);
            stack.push(a);
        }
        Instr::Rot3 => {
            let c = pop(stack);
            let b = pop(stack);
            let a = pop(stack);
            stack.push(b);
            stack.push(c);
            stack.push(a);
        }
        Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem => {
            let b = pop(stack);
            let a = pop(stack);
            stack.push(match (a, b) {
                (Ty::Float, _) | (_, Ty::Float) => Ty::Float,
                (Ty::Int, Ty::Int) => Ty::Int,
                _ => Ty::Unknown,
            });
        }
        Instr::Shl
        | Instr::Shr
        | Instr::BitAnd
        | Instr::BitOr
        | Instr::BitXor
        | Instr::CmpLt
        | Instr::CmpLe
        | Instr::CmpGt
        | Instr::CmpGe
        | Instr::CmpEq
        | Instr::CmpNe => {
            pop(stack);
            pop(stack);
            stack.push(Ty::Int);
        }
        Instr::Not | Instr::BitNot | Instr::F2I => {
            pop(stack);
            stack.push(Ty::Int);
        }
        Instr::Neg => {
            let t = pop(stack);
            stack.push(t);
        }
        Instr::I2F => {
            pop(stack);
            stack.push(Ty::Float);
        }
        Instr::Jump(_) | Instr::Nop => {}
        Instr::JumpIfZero(_) | Instr::JumpIfNotZero(_) => {
            pop(stack);
        }
        Instr::Call(_, n) => {
            for _ in 0..n {
                pop(stack);
            }
            stack.push(Ty::Unknown);
        }
        Instr::CallIntrinsic(intr, n) => {
            for _ in 0..n {
                pop(stack);
            }
            stack.push(if intr.is_pure() {
                Ty::Float
            } else {
                Ty::Unknown
            });
        }
        Instr::Ret => {
            pop(stack);
            stack.clear();
        }
        Instr::RetVoid => stack.clear(),
    }
}

/// Whole-function register typing: a register is `Int` when every value
/// ever stored into it is provably an integer. Starts optimistic (a
/// never-written register holds its `Value::I(0)` initialization) and
/// iterates the monotone meet to a fixpoint. Parameters are `Unknown` —
/// their values come from call sites or the engine.
fn register_types(code: &[Instr], leaders: &[bool], n_params: u8, n_regs: u16) -> Vec<Ty> {
    let mut ty = vec![Ty::Int; n_regs as usize];
    for slot in ty.iter_mut().take(n_params as usize) {
        *slot = Ty::Unknown;
    }
    loop {
        let mut changed = false;
        let mut stack: Vec<Ty> = Vec::new();
        for (i, ins) in code.iter().enumerate() {
            if leaders[i] {
                stack.clear();
            }
            let snapshot = ty.clone();
            sim_types(*ins, &mut stack, &snapshot, |r, t| {
                if let Some(slot) = ty.get_mut(r as usize) {
                    let m = meet(*slot, t);
                    if m != *slot {
                        *slot = m;
                        changed = true;
                    }
                }
            });
        }
        if !changed {
            return ty;
        }
    }
}

// -------------------------------------------- strength reduction (O2) --

/// `x * 2^k` → `x << k`, plus integer identities (`x+0`, `x-0`, `x*1`,
/// `x/1`, `x<<0`, `x>>0`). Every rewrite needs the non-constant operand
/// proven `Int`: the VM promotes mixed arithmetic to floats, and the
/// bitwise replacement would silently truncate a float operand. No float
/// identities are ever applied (`-0.0` and NaN make them unsound), and
/// division is never turned into a shift (C truncated division of
/// negative values disagrees with an arithmetic shift).
fn strength_pass(code: &[Instr], leaders: &[bool], n_params: u8, n_regs: u16) -> Patch {
    let reg_ty = register_types(code, leaders, n_params, n_regs);
    let mut p = Patch::new(code.len());
    let mut stack: Vec<Ty> = Vec::new();
    for (i, ins) in code.iter().enumerate() {
        if leaders[i] {
            stack.clear();
        }
        let free2 = i + 1 < code.len() && !leaders[i + 1];
        if free2 {
            // At this point the abstract stack top is the *left* operand
            // of the binary op at i+1 (code[i] pushes the right one).
            let left = stack.last().copied().unwrap_or(Ty::Unknown);
            if let Instr::PushI(c) = *ins {
                if left == Ty::Int && !p.is_set(i) && !p.is_set(i + 1) {
                    match code[i + 1] {
                        Instr::Mul if c == 1 => {
                            p.set(i, vec![]);
                            p.set(i + 1, vec![]);
                        }
                        Instr::Mul if c > 1 && (c & (c - 1)) == 0 => {
                            p.set(i, vec![Instr::PushI(i64::from(c.trailing_zeros()))]);
                            p.set(i + 1, vec![Instr::Shl]);
                        }
                        Instr::Add | Instr::Sub if c == 0 => {
                            p.set(i, vec![]);
                            p.set(i + 1, vec![]);
                        }
                        Instr::Div if c == 1 => {
                            p.set(i, vec![]);
                            p.set(i + 1, vec![]);
                        }
                        Instr::Shl | Instr::Shr if c == 0 => {
                            p.set(i, vec![]);
                            p.set(i + 1, vec![]);
                        }
                        _ => {}
                    }
                }
            }
        }
        // Simulate the *original* instruction: the rewrites above are
        // type-preserving, so the abstract stack stays accurate.
        sim_types(*ins, &mut stack, &reg_ty, |_, _| {});
    }
    p
}

// ------------------------------------------------------------ CSE (O2) --

/// Value-number key of a pure expression. Register operands carry a
/// generation that bumps on every store, so a reassignment retires every
/// value number built on the old contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VnKey {
    ConstI(i64),
    ConstF(u64),
    Mem(u32),
    Reg(u16, u32),
    Un(crate::instr::Op, u32),
    Bin(crate::instr::Op, u32, u32),
}

/// One abstract stack entry of the CSE scan: the value number (if the
/// value is a pure expression) and the contiguous instruction span that
/// produced it (if it can be rewritten as a unit).
#[derive(Debug, Clone, Copy)]
struct SymVal {
    vn: Option<u32>,
    span: Option<(usize, usize)>,
}

impl SymVal {
    fn opaque() -> Self {
        SymVal {
            vn: None,
            span: None,
        }
    }
}

/// The first available occurrence of a value number in the current block.
struct FirstOcc {
    span: (usize, usize),
    scratch: Option<u16>,
}

/// Recompute cost worth eliminating: at least this many instructions, or
/// any expression containing a `Mul`/`Div`/`Rem` (4 and 24 cycles).
fn worth_caching(code: &[Instr], span: (usize, usize)) -> bool {
    let len = span.1 - span.0 + 1;
    len >= 4
        || code[span.0..=span.1]
            .iter()
            .any(|i| matches!(i, Instr::Mul | Instr::Div | Instr::Rem))
}

/// Block-local common-subexpression elimination over pure expressions
/// (constants, register reads, unary/binary combinations — never loads,
/// which another thread may race with). The first occurrence grows a
/// `Dup; LocalSet scratch` capture; later occurrences in the same block
/// collapse to `LocalGet scratch`. Register reassignments retire value
/// numbers through per-register generations; block boundaries clear the
/// availability table, so the capture dominates every reuse.
fn cse_pass(code: &[Instr], leaders: &[bool], n_regs: &mut u16) -> Patch {
    let mut p = Patch::new(code.len());
    let mut vns: HashMap<VnKey, u32> = HashMap::new();
    let mut next_vn = 0u32;
    let mut vn_of = |key: VnKey, vns: &mut HashMap<VnKey, u32>| -> u32 {
        *vns.entry(key).or_insert_with(|| {
            next_vn += 1;
            next_vn
        })
    };
    let mut gen: HashMap<u16, u32> = HashMap::new();
    let mut avail: HashMap<u32, FirstOcc> = HashMap::new();
    let mut stack: Vec<SymVal> = Vec::new();

    for (i, ins) in code.iter().enumerate() {
        if leaders[i] {
            stack.clear();
            avail.clear();
        }
        let produced: Option<SymVal> = match *ins {
            Instr::PushI(c) => Some(SymVal {
                vn: Some(vn_of(VnKey::ConstI(c), &mut vns)),
                span: Some((i, i)),
            }),
            Instr::PushF(f) => Some(SymVal {
                vn: Some(vn_of(VnKey::ConstF(f.to_bits()), &mut vns)),
                span: Some((i, i)),
            }),
            Instr::LocalMemAddr(off) => Some(SymVal {
                vn: Some(vn_of(VnKey::Mem(off), &mut vns)),
                span: Some((i, i)),
            }),
            Instr::LocalGet(r) => Some(SymVal {
                vn: Some(vn_of(VnKey::Reg(r, *gen.get(&r).unwrap_or(&0)), &mut vns)),
                span: Some((i, i)),
            }),
            Instr::Neg | Instr::Not | Instr::BitNot | Instr::I2F | Instr::F2I => {
                let a = stack.pop().unwrap_or_else(SymVal::opaque);
                let vn = a.vn.map(|v| vn_of(VnKey::Un(ins.op(), v), &mut vns));
                let span = a.span.filter(|&(_, e)| e + 1 == i).map(|(s, _)| (s, i));
                Some(SymVal { vn, span })
            }
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Rem
            | Instr::Shl
            | Instr::Shr
            | Instr::BitAnd
            | Instr::BitOr
            | Instr::BitXor
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe
            | Instr::CmpEq
            | Instr::CmpNe => {
                let b = stack.pop().unwrap_or_else(SymVal::opaque);
                let a = stack.pop().unwrap_or_else(SymVal::opaque);
                let vn = match (a.vn, b.vn) {
                    (Some(x), Some(y)) => Some(vn_of(VnKey::Bin(ins.op(), x, y), &mut vns)),
                    _ => None,
                };
                // Contiguous only when a's span, b's span and the op abut.
                let span = match (a.span, b.span) {
                    (Some((sa, ea)), Some((sb, eb))) if ea + 1 == sb && eb + 1 == i => {
                        Some((sa, i))
                    }
                    _ => None,
                };
                Some(SymVal { vn, span })
            }
            Instr::LocalSet(r) => {
                stack.pop();
                *gen.entry(r).or_insert(0) += 1;
                None
            }
            Instr::Load(_) => {
                stack.pop();
                Some(SymVal::opaque())
            }
            Instr::Store(_, keep) => {
                stack.pop();
                stack.pop();
                if keep {
                    Some(SymVal::opaque())
                } else {
                    None
                }
            }
            Instr::Dup => {
                // The copy shares the value but not the producing span —
                // two entries must never both claim the same indices.
                let top = stack.last().copied().unwrap_or_else(SymVal::opaque);
                Some(SymVal {
                    vn: top.vn,
                    span: None,
                })
            }
            Instr::Pop => {
                stack.pop();
                None
            }
            Instr::Swap => {
                let b = stack.pop().unwrap_or_else(SymVal::opaque);
                let a = stack.pop().unwrap_or_else(SymVal::opaque);
                stack.push(b);
                stack.push(a);
                None
            }
            Instr::Rot3 => {
                let c = stack.pop().unwrap_or_else(SymVal::opaque);
                let b = stack.pop().unwrap_or_else(SymVal::opaque);
                let a = stack.pop().unwrap_or_else(SymVal::opaque);
                stack.push(b);
                stack.push(c);
                stack.push(a);
                None
            }
            Instr::Jump(_) | Instr::Nop => None,
            Instr::JumpIfZero(_) | Instr::JumpIfNotZero(_) => {
                stack.pop();
                None
            }
            Instr::Call(_, n) => {
                for _ in 0..n {
                    stack.pop();
                }
                Some(SymVal::opaque())
            }
            Instr::CallIntrinsic(_, n) => {
                for _ in 0..n {
                    stack.pop();
                }
                Some(SymVal::opaque())
            }
            Instr::Ret | Instr::RetVoid => {
                stack.clear();
                None
            }
        };
        let Some(mut val) = produced else { continue };
        // A completed pure expression worth caching: capture or reuse.
        if let (Some(vn), Some(span)) = (val.vn, val.span) {
            if span.1 == i && worth_caching(code, span) {
                match avail.get_mut(&vn) {
                    Some(first) => {
                        let capture_ok = first.scratch.is_some()
                            || (!p.is_set(first.span.1) && *n_regs < u16::MAX - 2);
                        let range_free = (span.0..=span.1).all(|k| !p.is_set(k));
                        if capture_ok && range_free {
                            let scratch = match first.scratch {
                                Some(s) => s,
                                None => {
                                    let s = *n_regs;
                                    *n_regs += 1;
                                    p.set(
                                        first.span.1,
                                        vec![code[first.span.1], Instr::Dup, Instr::LocalSet(s)],
                                    );
                                    first.scratch = Some(s);
                                    s
                                }
                            };
                            for k in span.0..span.1 {
                                p.set(k, vec![]);
                            }
                            p.set(span.1, vec![Instr::LocalGet(scratch)]);
                            // The reuse site no longer owns its span.
                            val.span = None;
                        }
                    }
                    None => {
                        avail.insert(
                            vn,
                            FirstOcc {
                                span,
                                scratch: None,
                            },
                        );
                    }
                }
            }
        }
        stack.push(val);
    }
    p
}

// ------------------------------------------------ load forwarding (O2) --

/// Abstract tag for the escape/forwarding scans: either a frame address
/// with a known offset, or anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    Addr(u32),
    Other,
}

/// The frame variable covering `offset` (last match wins, mirroring
/// lexical shadowing, same as `Function::frame_var_at`).
fn var_at(frame_vars: &[FrameVar], offset: u32) -> Option<&FrameVar> {
    frame_vars
        .iter()
        .rev()
        .find(|v| offset >= v.offset && offset < v.offset + v.size)
}

/// Escape analysis over frame variables: a variable escapes when any
/// `LocalMemAddr` of it is consumed by anything other than the address
/// slot of a direct `Load`/`Store` — address arithmetic (array
/// indexing), a register store (pointer locals), a call argument
/// (`&x` handed to another function or to `pthread_create`), a stored
/// *value* (a pointer written to memory, visible to other threads), or
/// surviving to a block boundary. Only non-escaping variables are
/// eligible for load forwarding: no other thread can possibly hold
/// their address.
fn escaped_vars(code: &[Instr], leaders: &[bool], frame_vars: &[FrameVar]) -> Vec<u32> {
    let mut escaped: Vec<u32> = Vec::new();
    let mark = |escaped: &mut Vec<u32>, off: u32| {
        let key = var_at(frame_vars, off).map_or(off, |v| v.offset);
        if !escaped.contains(&key) {
            escaped.push(key);
        }
    };
    let mut stack: Vec<Tag> = Vec::new();
    let flush = |stack: &mut Vec<Tag>, escaped: &mut Vec<u32>| {
        for t in stack.drain(..) {
            if let Tag::Addr(off) = t {
                mark(escaped, off);
            }
        }
    };
    for (i, ins) in code.iter().enumerate() {
        if leaders[i] {
            // Entries alive across a block boundary lose tracking.
            flush(&mut stack, &mut escaped);
        }
        let pop = |stack: &mut Vec<Tag>| stack.pop().unwrap_or(Tag::Other);
        let consume = |stack: &mut Vec<Tag>, escaped: &mut Vec<u32>| {
            if let Tag::Addr(off) = pop(stack) {
                mark(escaped, off);
            }
        };
        match *ins {
            Instr::LocalMemAddr(off) => stack.push(Tag::Addr(off)),
            Instr::PushI(_) | Instr::PushF(_) | Instr::LocalGet(_) => stack.push(Tag::Other),
            Instr::Load(_) => {
                pop(&mut stack); // address slot of a direct load: fine
                stack.push(Tag::Other);
            }
            Instr::Store(_, keep) => {
                // A frame address stored *as the value* escapes.
                consume(&mut stack, &mut escaped);
                pop(&mut stack); // address slot of a direct store: fine
                if keep {
                    stack.push(Tag::Other);
                }
            }
            Instr::Dup => {
                let t = stack.last().copied().unwrap_or(Tag::Other);
                stack.push(t);
            }
            Instr::Pop => {
                pop(&mut stack);
            }
            Instr::Swap => {
                let b = pop(&mut stack);
                let a = pop(&mut stack);
                stack.push(b);
                stack.push(a);
            }
            Instr::Rot3 => {
                let c = pop(&mut stack);
                let b = pop(&mut stack);
                let a = pop(&mut stack);
                stack.push(b);
                stack.push(c);
                stack.push(a);
            }
            Instr::LocalSet(_) => consume(&mut stack, &mut escaped),
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Rem
            | Instr::Shl
            | Instr::Shr
            | Instr::BitAnd
            | Instr::BitOr
            | Instr::BitXor
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe
            | Instr::CmpEq
            | Instr::CmpNe => {
                consume(&mut stack, &mut escaped);
                consume(&mut stack, &mut escaped);
                stack.push(Tag::Other);
            }
            Instr::Neg | Instr::Not | Instr::BitNot | Instr::I2F | Instr::F2I => {
                consume(&mut stack, &mut escaped);
                stack.push(Tag::Other);
            }
            Instr::Jump(_) | Instr::Nop => {}
            Instr::JumpIfZero(_) | Instr::JumpIfNotZero(_) => {
                consume(&mut stack, &mut escaped);
            }
            Instr::Call(_, n) | Instr::CallIntrinsic(_, n) => {
                for _ in 0..n {
                    consume(&mut stack, &mut escaped);
                }
                stack.push(Tag::Other);
            }
            Instr::Ret => {
                consume(&mut stack, &mut escaped);
                flush(&mut stack, &mut escaped);
            }
            Instr::RetVoid => flush(&mut stack, &mut escaped),
        }
    }
    flush(&mut stack, &mut escaped);
    escaped
}

/// One forwardable load occurrence.
struct LoadOcc {
    load_idx: usize,
    scratch: Option<u16>,
}

/// Block-local load forwarding for **non-escaping frame-stack slots**:
/// the second `LocalMemAddr off; Load kind` of the same slot in a block
/// becomes `LocalGet scratch`, with the first load capturing its value
/// (`Dup; LocalSet scratch`).
///
/// Sharing-soundness rules, in order of importance:
///
/// * Only non-escaping slots qualify ([`escaped_vars`]): nobody else —
///   no other thread, no callee, no pointer stored anywhere — can have
///   their address, so no store this pass cannot see can change them.
///   Globals (`PushI` addresses, including every pthread-shared
///   variable) and Shared-region addresses never match the pattern.
/// * Availability dies at every `Call` and every non-pure
///   `CallIntrinsic` — all synchronization operations (mutex, barrier,
///   RCCE put/get/flag) are intrinsics, so forwarding never crosses a
///   sync point even though a non-escaping slot could not be affected.
/// * A direct store into the variable kills its availability; an
///   indirect store (computed address) conservatively kills everything.
/// * Availability is block-local, so the capture dominates every reuse.
fn forward_loads_pass(
    code: &[Instr],
    leaders: &[bool],
    frame_vars: &[FrameVar],
    n_regs: &mut u16,
) -> Patch {
    let escaped = escaped_vars(code, leaders, frame_vars);
    let var_key = |off: u32| var_at(frame_vars, off).map_or(off, |v| v.offset);
    let mut p = Patch::new(code.len());
    // (slot offset, kind discriminator) → live occurrence.
    let mut avail: HashMap<(u32, crate::value::MemKind), LoadOcc> = HashMap::new();
    let mut stack: Vec<Tag> = Vec::new();
    for (i, ins) in code.iter().enumerate() {
        if leaders[i] {
            stack.clear();
            avail.clear();
        }
        // Candidate pattern: LocalMemAddr(off) at i, Load(kind) at i+1.
        if let Instr::LocalMemAddr(off) = *ins {
            if let Some(Instr::Load(kind)) = code.get(i + 1).copied() {
                let eligible = !leaders[i + 1]
                    && !escaped.contains(&var_key(off))
                    && !p.is_set(i)
                    && !p.is_set(i + 1);
                if eligible {
                    match avail.get_mut(&(off, kind)) {
                        Some(occ) => {
                            let scratch = match occ.scratch {
                                Some(s) => Some(s),
                                None if !p.is_set(occ.load_idx) && *n_regs < u16::MAX - 2 => {
                                    let s = *n_regs;
                                    *n_regs += 1;
                                    p.set(
                                        occ.load_idx,
                                        vec![Instr::Load(kind), Instr::Dup, Instr::LocalSet(s)],
                                    );
                                    occ.scratch = Some(s);
                                    Some(s)
                                }
                                None => None,
                            };
                            if let Some(s) = scratch {
                                p.set(i, vec![]);
                                p.set(i + 1, vec![Instr::LocalGet(s)]);
                            }
                        }
                        None => {
                            avail.insert(
                                (off, kind),
                                LoadOcc {
                                    load_idx: i + 1,
                                    scratch: None,
                                },
                            );
                        }
                    }
                }
            }
        }
        // Kills, tracked over the same tag stack as the escape scan.
        match *ins {
            Instr::Store(_, _) => {
                // Peek the address slot (below the value) before the
                // generic simulation pops it.
                let addr = stack
                    .len()
                    .checked_sub(2)
                    .and_then(|k| stack.get(k))
                    .copied()
                    .unwrap_or(Tag::Other);
                match addr {
                    Tag::Addr(off) => {
                        let key = var_key(off);
                        avail.retain(|&(o, _), _| var_key(o) != key);
                    }
                    Tag::Other => avail.clear(),
                }
            }
            Instr::Call(..) => avail.clear(),
            Instr::CallIntrinsic(intr, _) if !intr.is_pure() => avail.clear(),
            _ => {}
        }
        sim_tags(*ins, &mut stack);
    }
    p
}

/// Tag-stack simulation shared by the forwarding scan (escape analysis
/// runs its own copy because it also marks consumers).
fn sim_tags(ins: Instr, stack: &mut Vec<Tag>) {
    let pop = |stack: &mut Vec<Tag>| stack.pop().unwrap_or(Tag::Other);
    match ins {
        Instr::LocalMemAddr(off) => stack.push(Tag::Addr(off)),
        Instr::PushI(_) | Instr::PushF(_) | Instr::LocalGet(_) => stack.push(Tag::Other),
        Instr::Load(_) => {
            pop(stack);
            stack.push(Tag::Other);
        }
        Instr::Store(_, keep) => {
            pop(stack);
            pop(stack);
            if keep {
                stack.push(Tag::Other);
            }
        }
        Instr::Dup => {
            let t = stack.last().copied().unwrap_or(Tag::Other);
            stack.push(t);
        }
        Instr::Pop | Instr::LocalSet(_) | Instr::JumpIfZero(_) | Instr::JumpIfNotZero(_) => {
            pop(stack);
        }
        Instr::Swap => {
            let b = pop(stack);
            let a = pop(stack);
            stack.push(b);
            stack.push(a);
        }
        Instr::Rot3 => {
            let c = pop(stack);
            let b = pop(stack);
            let a = pop(stack);
            stack.push(b);
            stack.push(c);
            stack.push(a);
        }
        Instr::Neg | Instr::Not | Instr::BitNot | Instr::I2F | Instr::F2I => {
            pop(stack);
            stack.push(Tag::Other);
        }
        Instr::Add
        | Instr::Sub
        | Instr::Mul
        | Instr::Div
        | Instr::Rem
        | Instr::Shl
        | Instr::Shr
        | Instr::BitAnd
        | Instr::BitOr
        | Instr::BitXor
        | Instr::CmpLt
        | Instr::CmpLe
        | Instr::CmpGt
        | Instr::CmpGe
        | Instr::CmpEq
        | Instr::CmpNe => {
            pop(stack);
            pop(stack);
            stack.push(Tag::Other);
        }
        Instr::Jump(_) | Instr::Nop => {}
        Instr::Call(_, n) | Instr::CallIntrinsic(_, n) => {
            for _ in 0..n {
                pop(stack);
            }
            stack.push(Tag::Other);
        }
        Instr::Ret => {
            pop(stack);
            stack.clear();
        }
        Instr::RetVoid => stack.clear(),
    }
}

/// Renders a function's bytecode one instruction per line with indices —
/// the listing format `docs/OPTIMIZER.md` uses for worked examples.
pub fn disassemble(code: &[Instr]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, ins) in code.iter().enumerate() {
        let _ = writeln!(out, "{i:>4}  {ins}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, STACKS_BASE};
    use crate::data::ByteMemory;
    use crate::instr::Intrinsic;
    use crate::value::MemKind;
    use crate::vm::{StepOutcome, Vm};

    /// Runs a single-threaded program to completion, returning its exit
    /// value as i64 (pure-compute corpus for the fixture tests).
    fn run_to_exit(program: &Program) -> i64 {
        let mut vm = Vm::new(program, program.entry, vec![], STACKS_BASE);
        let mut mem = ByteMemory::new();
        for _ in 0..1_000_000 {
            match vm.run_until_event(program).expect("vm step") {
                StepOutcome::Finished { exit } => return exit.as_i(),
                StepOutcome::Load { addr, kind, .. } => vm.provide_load(mem.load(addr, kind)),
                StepOutcome::Store {
                    addr, kind, value, ..
                } => {
                    mem.store(addr, kind, value);
                    vm.store_done();
                }
                StepOutcome::Syscall { .. } => panic!("fixture programs make no syscalls"),
                StepOutcome::Ran { .. } => {}
            }
        }
        panic!("program did not terminate");
    }

    fn compile_src(src: &str) -> Program {
        let tu = hsm_cir::parse(src).expect("parse");
        compile(&tu).expect("compile")
    }

    /// Every level must compute the same exit code as O0, and O2 must
    /// not be larger than the compiler's output.
    fn assert_levels_agree(src: &str) -> (usize, usize) {
        let program = compile_src(src);
        let o0 = run_to_exit(&program);
        let (o1p, _) = optimize_with_stats(&program, OptLevel::O1);
        let (o2p, stats) = optimize_with_stats(&program, OptLevel::O2);
        assert_eq!(o0, run_to_exit(&o1p), "O1 diverged");
        assert_eq!(o0, run_to_exit(&o2p), "O2 diverged");
        assert!(
            stats.instrs_after <= stats.instrs_before,
            "O2 grew the program: {stats:?}"
        );
        (stats.instrs_before, stats.instrs_after)
    }

    #[test]
    fn opt_level_labels_round_trip() {
        for level in OptLevel::ALL {
            assert_eq!(OptLevel::parse(level.label()), Some(level));
        }
        assert_eq!(OptLevel::parse("O3"), None);
        assert_eq!(OptLevel::default(), OptLevel::O0);
        assert!(OptLevel::O1 < OptLevel::O2);
    }

    #[test]
    fn o0_is_an_exact_copy() {
        let program = compile_src("int main() { return 1 + 2; }");
        let (out, stats) = optimize_with_stats(&program, OptLevel::O0);
        assert_eq!(stats.instrs_before, stats.instrs_after);
        for (a, b) in program.funcs.iter().zip(out.funcs.iter()) {
            assert_eq!(a.code, b.code);
        }
    }

    // ---------------------------------------------------- fold fixtures --

    #[test]
    fn folds_constant_binary_chains() {
        let code = vec![
            Instr::PushI(2),
            Instr::PushI(3),
            Instr::Add, // 5
            Instr::PushI(4),
            Instr::Mul, // 20
            Instr::Ret,
        ];
        let mut c = code;
        while apply(&mut c, fold_pass) {}
        assert_eq!(c, vec![Instr::PushI(20), Instr::Ret]);
    }

    #[test]
    fn never_folds_division_by_zero() {
        let code = vec![Instr::PushI(1), Instr::PushI(0), Instr::Div, Instr::Ret];
        let mut c = code.clone();
        assert!(!apply(&mut c, fold_pass), "must stay put");
        assert_eq!(c, code);
    }

    #[test]
    fn folds_mixed_float_promotion_like_the_vm() {
        let code = vec![Instr::PushI(3), Instr::PushF(0.5), Instr::Mul, Instr::Ret];
        let mut c = code;
        apply(&mut c, fold_pass);
        assert_eq!(c, vec![Instr::PushF(1.5), Instr::Ret]);
    }

    #[test]
    fn folds_constant_branches_both_ways() {
        // if (1) → unconditional fallthrough; if (0) → unconditional jump.
        let taken = vec![
            Instr::PushI(0),
            Instr::JumpIfZero(3),
            Instr::Nop,
            Instr::Ret,
        ];
        let mut c = taken;
        apply(&mut c, fold_pass);
        // The folded jump's target is remapped through the rebuild.
        assert!(
            matches!(c[0], Instr::Jump(t) if c[t as usize] == Instr::Ret),
            "{c:?}"
        );
        let fallthrough = vec![
            Instr::PushI(7),
            Instr::JumpIfZero(3),
            Instr::Nop,
            Instr::Ret,
        ];
        let mut c = fallthrough;
        apply(&mut c, fold_pass);
        assert_eq!(c, vec![Instr::Nop, Instr::Ret]);
    }

    #[test]
    fn folds_frame_address_offsets() {
        let code = vec![
            Instr::LocalMemAddr(16),
            Instr::PushI(8),
            Instr::Add,
            Instr::Load(MemKind::I32),
            Instr::Ret,
        ];
        let mut c = code;
        apply(&mut c, fold_pass);
        assert_eq!(c[0], Instr::LocalMemAddr(24));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn propagates_block_local_register_constants() {
        let code = vec![
            Instr::PushI(6),
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::PushI(7),
            Instr::Mul,
            Instr::Ret,
        ];
        let mut c = code;
        while apply(&mut c, fold_pass) {}
        // The get folded to 42; the dead store remains for DCE.
        assert!(c.contains(&Instr::PushI(42)), "{c:?}");
    }

    #[test]
    fn does_not_propagate_constants_across_jump_targets() {
        // Index 2 is a jump target: the register may arrive with another
        // value, so LocalGet(0) must not fold.
        let code = vec![
            Instr::PushI(6),
            Instr::LocalSet(0),
            Instr::LocalGet(0), // leader (target of 4)
            Instr::Ret,
            Instr::Jump(2),
        ];
        let mut c = code.clone();
        apply(&mut c, fold_pass);
        assert_eq!(c, code);
    }

    #[test]
    fn multi_instruction_folds_respect_interior_leaders() {
        // `PushI 2; PushI 3; Add` where the PushI 3 is a jump target:
        // folding would break the jump-in path.
        let code = vec![
            Instr::PushI(2),
            Instr::PushI(3), // leader (target of 4)
            Instr::Add,
            Instr::Ret,
            Instr::Jump(1),
        ];
        let mut c = code.clone();
        apply(&mut c, fold_pass);
        assert_eq!(c, code);
    }

    // ---------------------------------------------------- jump fixtures --

    #[test]
    fn threads_jump_chains_and_drops_jumps_to_next() {
        let code = vec![
            Instr::JumpIfZero(3), // → 3 which is Jump(5): thread to 5
            Instr::Jump(2),       // jump-to-next: delete
            Instr::PushI(1),
            Instr::Jump(5),
            Instr::PushI(2),
            Instr::Ret,
        ];
        let mut c = code;
        apply(&mut c, |x, _| jump_pass(x));
        let mut c2 = c.clone();
        // One application threads + deletes; indices remap.
        assert!(c2.iter().all(|i| *i != Instr::Jump(2)));
        assert!(
            matches!(c[0], Instr::JumpIfZero(t) if c[t as usize] == Instr::Ret),
            "{c:?}"
        );
        while apply(&mut c2, |x, _| jump_pass(x)) {}
    }

    #[test]
    fn conditional_jump_to_next_becomes_pop() {
        let code = vec![
            Instr::PushI(1),
            Instr::JumpIfNotZero(2),
            Instr::PushI(9),
            Instr::Ret,
        ];
        let mut c = code;
        apply(&mut c, |x, _| jump_pass(x));
        assert_eq!(c[1], Instr::Pop);
    }

    // ----------------------------------------------------- DCE fixtures --

    #[test]
    fn removes_unreachable_code_and_dead_register_stores() {
        let code = vec![
            Instr::PushI(3),
            Instr::LocalSet(1), // never read → Pop
            Instr::Jump(4),
            Instr::PushI(99), // unreachable
            Instr::PushI(7),
            Instr::Ret,
        ];
        let mut c = code;
        while apply(&mut c, |x, _| dce_pass(x))
            || apply(&mut c, fold_pass)
            || apply(&mut c, |x, _| jump_pass(x))
        {}
        // push 3 + LocalSet→Pop cancel; unreachable push gone.
        assert_eq!(c, vec![Instr::PushI(7), Instr::Ret]);
    }

    // ------------------------------------------------ strength fixtures --

    #[test]
    fn strength_reduces_proven_integer_multiplies() {
        // Register 0 only ever holds integers (never a parameter here).
        let code = vec![
            Instr::PushI(5),
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::PushI(8),
            Instr::Mul,
            Instr::Ret,
        ];
        let mut c = code;
        apply(&mut c, |x, l| strength_pass(x, l, 0, 1));
        assert!(c.contains(&Instr::Shl), "{c:?}");
        assert!(c.contains(&Instr::PushI(3)), "shift amount: {c:?}");
    }

    #[test]
    fn strength_reduction_skips_unproven_operands() {
        // Register 0 is a parameter: its type is unknown, so `x * 8`
        // must stay a multiply (a float argument would promote).
        let code = vec![Instr::LocalGet(0), Instr::PushI(8), Instr::Mul, Instr::Ret];
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| strength_pass(x, l, 1, 1)));
        assert_eq!(c, code);
    }

    #[test]
    fn strength_reduction_skips_float_registers() {
        let code = vec![
            Instr::PushF(1.5),
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::PushI(8),
            Instr::Mul,
            Instr::Ret,
        ];
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| strength_pass(x, l, 0, 1)));
        assert_eq!(c, code);
    }

    #[test]
    fn integer_identities_are_removed() {
        let code = vec![
            Instr::PushI(5),
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::PushI(0),
            Instr::Add,
            Instr::PushI(1),
            Instr::Div,
            Instr::Ret,
        ];
        let mut c = code;
        apply(&mut c, |x, l| strength_pass(x, l, 0, 1));
        assert_eq!(
            c,
            vec![
                Instr::PushI(5),
                Instr::LocalSet(0),
                Instr::LocalGet(0),
                Instr::Ret
            ]
        );
    }

    #[test]
    fn loop_counters_type_as_integers_through_the_fixpoint() {
        // i = 0; i = i + 1 — the self-referential store still proves Int.
        let code = vec![
            Instr::PushI(0),
            Instr::LocalSet(0),
            Instr::LocalGet(0), // leader (loop head)
            Instr::PushI(1),
            Instr::Add,
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::PushI(10),
            Instr::CmpLt,
            Instr::JumpIfNotZero(2),
            Instr::LocalGet(0),
            Instr::PushI(4),
            Instr::Mul,
            Instr::Ret,
        ];
        let l = leaders(&code);
        let ty = register_types(&code, &l, 0, 1);
        assert_eq!(ty[0], Ty::Int);
        let mut c = code;
        apply(&mut c, |x, l| strength_pass(x, l, 0, 1));
        assert!(c.contains(&Instr::Shl), "{c:?}");
    }

    // ----------------------------------------------------- CSE fixtures --

    #[test]
    fn cse_captures_repeated_pure_expressions() {
        // (r0 * r1 + r2) computed twice in one block.
        let expr = [
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::Mul,
            Instr::LocalGet(2),
            Instr::Add,
        ];
        let mut code: Vec<Instr> = expr.to_vec();
        code.extend_from_slice(&expr);
        code.push(Instr::Add);
        code.push(Instr::Ret);
        let mut n_regs = 3u16;
        let mut c = code;
        assert!(apply(&mut c, |x, l| cse_pass(x, l, &mut n_regs)));
        assert_eq!(n_regs, 4, "one scratch register allocated");
        assert!(c.contains(&Instr::LocalGet(3)), "{c:?}");
        assert!(c.contains(&Instr::LocalSet(3)), "{c:?}");
        // The second occurrence collapsed: only one Mul remains.
        assert_eq!(c.iter().filter(|i| **i == Instr::Mul).count(), 1);
    }

    #[test]
    fn cse_respects_register_reassignment() {
        let mut n_regs = 2u16;
        let code = vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::Mul,
            Instr::PushI(9),
            Instr::LocalSet(0), // r0 changes: the VN is stale
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::Mul,
            Instr::Add,
            Instr::Ret,
        ];
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| cse_pass(x, l, &mut n_regs)));
        assert_eq!(c, code);
    }

    #[test]
    fn cse_never_crosses_block_boundaries() {
        let mut n_regs = 2u16;
        let code = vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::Mul,
            Instr::Pop,
            Instr::LocalGet(0), // leader: jumped to from 9
            Instr::LocalGet(1),
            Instr::Mul,
            Instr::Ret,
            Instr::PushI(1),
            Instr::Jump(4),
        ];
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| cse_pass(x, l, &mut n_regs)));
        assert_eq!(c, code);
    }

    #[test]
    fn cse_never_caches_loads() {
        // Two identical global loads must both stay: another thread can
        // write the location between them.
        let mut n_regs = 0u16;
        let code = vec![
            Instr::PushI(0x1000_0000),
            Instr::Load(MemKind::I32),
            Instr::PushI(0x1000_0000),
            Instr::Load(MemKind::I32),
            Instr::Add,
            Instr::Ret,
        ];
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| cse_pass(x, l, &mut n_regs)));
        assert_eq!(c, code);
        assert_eq!(n_regs, 0);
    }

    // ----------------------------------------- load-forwarding fixtures --

    fn scalar_var(offset: u32, size: u32) -> FrameVar {
        FrameVar {
            name: format!("v{offset}"),
            offset,
            size,
        }
    }

    #[test]
    fn forwards_repeated_loads_of_private_slots() {
        let vars = [scalar_var(0, 4)];
        let code = vec![
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Add,
            Instr::Ret,
        ];
        let mut n_regs = 0u16;
        let mut c = code;
        assert!(apply(&mut c, |x, l| forward_loads_pass(
            x,
            l,
            &vars,
            &mut n_regs
        )));
        assert_eq!(
            c,
            vec![
                Instr::LocalMemAddr(0),
                Instr::Load(MemKind::I32),
                Instr::Dup,
                Instr::LocalSet(0),
                Instr::LocalGet(0),
                Instr::Add,
                Instr::Ret,
            ]
        );
    }

    #[test]
    fn never_forwards_escaping_slots() {
        // The slot's address is passed to a call: another thread may
        // write it, every load must go to memory.
        let vars = [scalar_var(0, 4)];
        let code = vec![
            Instr::LocalMemAddr(0),
            Instr::CallIntrinsic(Intrinsic::PthreadCreate, 1),
            Instr::Pop,
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Add,
            Instr::Ret,
        ];
        let mut n_regs = 0u16;
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| forward_loads_pass(
            x,
            l,
            &vars,
            &mut n_regs
        )));
        assert_eq!(c, code);
    }

    #[test]
    fn forwarding_dies_at_sync_intrinsics() {
        let vars = [scalar_var(0, 4)];
        let code = vec![
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Pop,
            Instr::PushI(0),
            Instr::CallIntrinsic(Intrinsic::RcceBarrier, 1),
            Instr::Pop,
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Ret,
        ];
        let mut n_regs = 0u16;
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| forward_loads_pass(
            x,
            l,
            &vars,
            &mut n_regs
        )));
        assert_eq!(c, code);
    }

    #[test]
    fn forwarding_dies_at_direct_stores() {
        let vars = [scalar_var(0, 4)];
        let code = vec![
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Pop,
            Instr::LocalMemAddr(0),
            Instr::PushI(5),
            Instr::Store(MemKind::I32, false),
            Instr::LocalMemAddr(0),
            Instr::Load(MemKind::I32),
            Instr::Ret,
        ];
        let mut n_regs = 0u16;
        let mut c = code.clone();
        assert!(!apply(&mut c, |x, l| forward_loads_pass(
            x,
            l,
            &vars,
            &mut n_regs
        )));
        assert_eq!(c, code);
    }

    #[test]
    fn pointer_escapes_via_register_and_memory_are_detected() {
        let vars = [scalar_var(0, 4), scalar_var(4, 8)];
        // &v0 stored into a register (pointer local): v0 escapes.
        let via_reg = vec![Instr::LocalMemAddr(0), Instr::LocalSet(0), Instr::RetVoid];
        let l = leaders(&via_reg);
        assert_eq!(escaped_vars(&via_reg, &l, &vars), vec![0]);
        // &v0 stored *as a value* into memory: v0 escapes.
        let via_mem = vec![
            Instr::PushI(0x1000_0000),
            Instr::LocalMemAddr(0),
            Instr::Store(MemKind::I64, false),
            Instr::RetVoid,
        ];
        let l = leaders(&via_mem);
        assert_eq!(escaped_vars(&via_mem, &l, &vars), vec![0]);
        // Indexing arithmetic escapes the array var.
        let via_arith = vec![
            Instr::LocalMemAddr(4),
            Instr::PushI(0),
            Instr::Add,
            Instr::Load(MemKind::I64),
            Instr::Pop,
            Instr::RetVoid,
        ];
        let l = leaders(&via_arith);
        assert_eq!(escaped_vars(&via_arith, &l, &vars), vec![4]);
    }

    // --------------------------------------------- end-to-end fixtures --

    #[test]
    fn folds_match_vm_arithmetic() {
        // Cross-check the fold semantics against the running VM on a
        // grid of operand pairs, including negatives and floats.
        let ops = [
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::Div,
            Instr::Rem,
            Instr::Shl,
            Instr::Shr,
            Instr::BitAnd,
            Instr::BitOr,
            Instr::BitXor,
            Instr::CmpLt,
            Instr::CmpLe,
            Instr::CmpGt,
            Instr::CmpGe,
            Instr::CmpEq,
            Instr::CmpNe,
        ];
        let operands = [
            Value::I(0),
            Value::I(1),
            Value::I(-7),
            Value::I(i64::MAX),
            Value::F(2.5),
            Value::F(-0.0),
        ];
        let mut program = compile_src("int main() { return 0; }");
        for op in ops {
            for l in operands {
                for r in operands {
                    let Some(folded) = fold_binary(op, l, r) else {
                        continue;
                    };
                    program.funcs[program.entry as usize].code =
                        vec![push_const(l), push_const(r), op, Instr::F2I, Instr::Ret];
                    let vm_result = run_to_exit(&program);
                    assert_eq!(
                        vm_result,
                        folded.as_i(),
                        "fold of {op:?} {l:?} {r:?} diverged from the VM"
                    );
                }
            }
        }
    }

    #[test]
    fn whole_programs_agree_across_levels() {
        let before_after = assert_levels_agree(
            r#"
int main() {
    int a[4];
    int i;
    int s = 0;
    for (i = 0; i < 4; i++) a[i] = i * 8 + 3;
    for (i = 0; i < 4; i++) s = s + a[i];
    s = s + a[0] + a[3];
    s = s + 2 * 3;
    return s;
}
"#,
        );
        assert!(
            before_after.1 < before_after.0,
            "O2 should shrink this program: {before_after:?}"
        );
    }

    #[test]
    fn switch_and_division_programs_agree_across_levels() {
        assert_levels_agree(
            r#"
int classify(int x) {
    switch (x % 3) {
        case 0: return 10;
        case 1: return 20;
        default: return 30;
    }
}
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 9; i++) s = s + classify(i) / 1 + i * 1 + 0;
    return s;
}
"#,
        );
    }

    #[test]
    fn float_programs_agree_across_levels() {
        assert_levels_agree(
            r#"
int main() {
    double x = 0.5;
    double y = x * 2.0 + 1.5 * 4.0;
    int i;
    for (i = 0; i < 3; i++) y = y + 0.25;
    return (int)(y * 10.0);
}
"#,
        );
    }

    #[test]
    fn optimizer_reaches_a_fixpoint() {
        let program = compile_src(
            r#"
int main() {
    int i; int s = 0;
    for (i = 0; i < 10; i++) s = s + i * 4 + 2 * 2;
    return s;
}
"#,
        );
        let once = optimize(&program, OptLevel::O2);
        let twice = optimize(&once, OptLevel::O2);
        for (a, b) in once.funcs.iter().zip(twice.funcs.iter()) {
            assert_eq!(a.code, b.code, "second optimize must be a no-op");
        }
    }
}
