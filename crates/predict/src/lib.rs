//! # hsm-predict — analytical sweep-surface prediction from run profiles
//!
//! ROADMAP item 5: escape simulation cost by *predicting* sweep surfaces
//! instead of simulating every point, the way reuse-distance models
//! predict shared-cache performance (Barai et al., PAPERS.md). A
//! [`CyclePredictor`] is fitted from **one** profiled run — a
//! [`Profile`] produced by the `*_profiled` entry points of `hsm-exec` —
//! and then predicts the makespan of the same (program, scenario) pair at
//! any other core count.
//!
//! ## The model
//!
//! The measured makespan at the seed core count `n₀` is decomposed into
//!
//! ```text
//! T(n) = F + U  +  E · barrier(n)  +  Mshared/w(n)  +  Apriv · λ(n)/w(n)  +  R/w(n)
//! ```
//!
//! * `F` — fixed serial overhead (e.g. `RCCE_init`/`RCCE_finalize`),
//!   supplied by the caller via [`FitOptions::fixed_cycles`];
//! * `U` — the profile's *untimed* cycles (`total − timed`): everything
//!   outside the program's `wtime()`-bracketed parallel region. In the
//!   SPMD translation that is the serial prologue/epilogue `main` runs
//!   (workers wait at the first barrier meanwhile), and in the task
//!   runtime it is the master's sequential spawn loop — work that does
//!   not shrink when cores are added, so it enters the surface as a
//!   constant;
//! * `E · barrier(n)` — the barrier bill: `E` epochs (from the profile's
//!   sync summary), each costing the RCCE gather-release
//!   `n · (mpb_access + 4·hop)` cycles;
//! * `Mshared` — total shared-DRAM + MPB access cycles, constant per-run
//!   work spread over `w(n)` workers (those latencies are flat per
//!   access, so only the partitioning changes);
//! * `Apriv · λ(n)` — private-memory cycles: the access *count* is
//!   constant work, but the mean latency `λ(n)` changes with the per-core
//!   working set. This is where the reuse-distance histogram earns its
//!   keep: scaling the per-core data share by `n₀/n` shifts every reuse
//!   distance by `log₂(n₀/n)` buckets, and the shifted histogram's hit
//!   fractions against the L1/L2 capacities give the predicted latency,
//!   multiplicatively calibrated so the seed point reproduces its
//!   measured mean exactly;
//! * `R` — the *signed* residual (compute, syscalls, imbalance waits,
//!   minus whatever the analytical terms over-bill into `U`'s span),
//!   calibrated so `predict(n₀) == measured(n₀)` *exactly*, and scaled
//!   as parallel work.
//!
//! `w(n)` is the worker count of the scaling discipline
//! ([`WorkScaling`]): all `n` cores for barrier-SPMD programs, `n − 1`
//! for the task runtime (core 0 is the dedicated master), and constant
//! for the single-core pthread baseline (whose thread count is a program
//! property, not the sweep axis — its surface is flat).
//!
//! The model is deliberately cheap — closed-form, no simulation — and
//! honest about it: `scripts/check_predict.py` gates the mean relative
//! error on held-out corpus programs (`dot_product`, ported in both
//! barrier and task forms) at ≤ 15% across 2–32 cores × all three
//! exec models.

#![warn(missing_docs)]

use hsm_exec::profile::ReuseHistogram;
use hsm_exec::Profile;
use scc_sim::{Region, SccConfig};

/// How the profiled program's work redistributes as the core count
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkScaling {
    /// SPMD partitioning: every core is a worker (RCCE barrier modes).
    Partitioned,
    /// Task-dataflow: core 0 is a dedicated master; `n − 1` workers.
    PartitionedWithMaster,
    /// The pthread baseline: every thread timeshares one core and the
    /// thread count is fixed by the program, so the sweep surface is
    /// constant in `n`.
    Serialized,
}

impl WorkScaling {
    /// Workers available at `cores` (at least 1).
    pub fn workers(self, cores: usize) -> u64 {
        match self {
            WorkScaling::Partitioned => cores.max(1) as u64,
            WorkScaling::PartitionedWithMaster => cores.saturating_sub(1).max(1) as u64,
            WorkScaling::Serialized => 1,
        }
    }
}

/// Private-cache treatment during latency prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheModel {
    /// Model the L1/L2 hierarchy from the reuse histogram (the coherent
    /// and non-coherent write-back exec models).
    Hierarchy,
    /// Flat per-access latency (the `seq_cst` differential reference):
    /// the working-set transform is skipped.
    Flat,
}

/// Everything [`CyclePredictor::fit`] needs besides the profile itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Work-redistribution discipline of the profiled scenario.
    pub scaling: WorkScaling,
    /// Private-cache treatment.
    pub cache: CacheModel,
    /// Fixed serial overhead cycles (library init/teardown) that do not
    /// shrink with more workers.
    pub fixed_cycles: u64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            scaling: WorkScaling::Partitioned,
            cache: CacheModel::Hierarchy,
            fixed_cycles: 0,
        }
    }
}

/// A fitted cycles predictor for one (program, scenario) pair.
///
/// Fit once from a profiled seed run, then evaluate at any core count in
/// constant time. `predict(seed_cores)` reproduces the measured seed
/// makespan exactly (the residual term absorbs what the analytical parts
/// miss).
#[derive(Debug, Clone)]
pub struct CyclePredictor {
    seed_cores: usize,
    seed_total: u64,
    options: FitOptions,
    /// Untimed (outside the `wtime` bracket) cycles at the seed — the
    /// serial prologue/epilogue, constant across the core axis.
    untimed: u64,
    /// Chip-wide private reuse histogram at the seed.
    reuse: ReuseHistogram,
    /// Total private-region accesses / cycles at the seed.
    priv_accesses: u64,
    /// Calibration: measured-over-model private latency ratio.
    lat_scale: f64,
    /// Total shared-DRAM + MPB cycles at the seed.
    shared_cycles: u64,
    /// Barrier epochs observed at the seed.
    epochs: u64,
    /// Per-epoch, per-participant barrier cost coefficient.
    barrier_unit: u64,
    /// L1 / L2 capacities in lines.
    l1_lines: u64,
    l2_lines: u64,
    /// Model latencies (cycles): L1 hit, L2 hit, miss to DRAM.
    lat: [f64; 3],
    /// Signed residual work (cycles × workers) calibrated at the seed.
    residual: f64,
}

impl CyclePredictor {
    /// Fits the model from one profiled run executed at `seed_cores`.
    pub fn fit(
        profile: &Profile,
        seed_cores: usize,
        config: &SccConfig,
        options: FitOptions,
    ) -> CyclePredictor {
        let reuse = profile.reuse_total();
        let priv_idx = Region::Private.index();
        let priv_accesses: u64 = profile.per_core.iter().map(|c| c.accesses[priv_idx]).sum();
        let priv_cycles: u64 = profile.per_core.iter().map(|c| c.cycles[priv_idx]).sum();
        let shared_cycles = profile.regions[Region::SharedDram.index()].cycles
            + profile.regions[Region::Mpb.index()].cycles;
        let l1_lines = (config.l1_bytes / config.line_bytes).max(1) as u64;
        let l2_lines = (config.l2_bytes / config.line_bytes).max(1) as u64;
        let lat = [
            config.l1_hit_cycles as f64,
            config.l2_hit_cycles as f64,
            (config.dram_service_cycles + config.dram_occupancy_cycles) as f64,
        ];
        let mut p = CyclePredictor {
            seed_cores,
            seed_total: profile.total_cycles,
            options,
            untimed: profile.total_cycles.saturating_sub(profile.timed_cycles),
            reuse,
            priv_accesses,
            lat_scale: 1.0,
            shared_cycles,
            epochs: profile.sync.barrier_epochs,
            barrier_unit: config.mpb_access_cycles + 4 * config.hop_cycles,
            l1_lines,
            l2_lines,
            lat,
            residual: 0.0,
        };
        // Calibrate the latency model so the unshifted histogram
        // reproduces the measured mean private latency.
        let measured_mean = if priv_accesses > 0 {
            priv_cycles as f64 / priv_accesses as f64
        } else {
            0.0
        };
        let model_mean = p.model_latency(0);
        p.lat_scale = if model_mean > 0.0 {
            measured_mean / model_mean
        } else {
            0.0
        };
        // Calibrate the (signed) residual so predict(seed) ==
        // measured(seed) exactly, even when the analytical terms
        // over-bill work that really sits inside `U`.
        let analytic = p.analytic_cycles(seed_cores);
        let w0 = options.scaling.workers(seed_cores) as f64;
        p.residual = (profile.total_cycles as f64 - analytic) * w0;
        p
    }

    /// The un-calibrated mean private-access latency implied by the
    /// histogram shifted by `shift` buckets.
    fn model_latency(&self, shift: i32) -> f64 {
        if self.priv_accesses == 0 {
            return 0.0;
        }
        if self.options.cache == CacheModel::Flat {
            return 1.0;
        }
        let h = self.reuse.shifted(shift);
        let f1 = h.hit_fraction(self.l1_lines);
        let f2 = h.hit_fraction(self.l2_lines).max(f1);
        f1 * self.lat[0] + (f2 - f1) * self.lat[1] + (1.0 - f2) * self.lat[2]
    }

    /// The bucket shift for evaluating at `cores`: the per-worker data
    /// share scales by `w₀/w`, so distances shift by its (rounded) log₂.
    fn shift_for(&self, cores: usize) -> i32 {
        let w0 = self.options.scaling.workers(self.seed_cores) as f64;
        let w = self.options.scaling.workers(cores) as f64;
        (w0 / w).log2().round() as i32
    }

    /// The analytical (non-residual) terms at `cores`.
    fn analytic_cycles(&self, cores: usize) -> f64 {
        let w = self.options.scaling.workers(cores) as f64;
        let barrier = match self.options.scaling {
            WorkScaling::Serialized => 0.0,
            _ => (self.epochs * self.barrier_unit) as f64 * cores as f64,
        };
        let shared = self.shared_cycles as f64 / w;
        let priv_mem =
            self.priv_accesses as f64 * self.lat_scale * self.model_latency(self.shift_for(cores))
                / w;
        self.options.fixed_cycles as f64 + self.untimed as f64 + barrier + shared + priv_mem
    }

    /// Predicted makespan cycles at `cores`.
    pub fn predict(&self, cores: usize) -> u64 {
        if self.options.scaling == WorkScaling::Serialized {
            // The baseline ignores the core axis entirely.
            return self.seed_total;
        }
        let w = self.options.scaling.workers(cores) as f64;
        let cycles = self.analytic_cycles(cores) + self.residual / w;
        cycles.round().max(1.0) as u64
    }

    /// The seed core count the model was fitted at.
    pub fn seed_cores(&self) -> usize {
        self.seed_cores
    }

    /// The measured seed makespan.
    pub fn seed_total(&self) -> u64 {
        self.seed_total
    }
}

/// Relative error `|predicted − actual| / actual` (0 when both are 0).
pub fn relative_error(predicted: u64, actual: u64) -> f64 {
    if actual == 0 {
        return if predicted == 0 { 0.0 } else { 1.0 };
    }
    (predicted.abs_diff(actual)) as f64 / actual as f64
}

/// Absolute error `|predicted − actual|`.
pub fn absolute_error(predicted: u64, actual: u64) -> u64 {
    predicted.abs_diff(actual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_exec::profile::{CoreProfile, SyncSummary};

    fn synthetic_profile(cores: usize, total: u64, epochs: u64) -> Profile {
        let mut per_core = Vec::new();
        for _ in 0..cores {
            let mut c = CoreProfile::default();
            // 1000 private accesses per core: 900 short-distance (L1),
            // 100 at distance ~2048 (L2 at the seed).
            for _ in 0..900 {
                c.reuse.record(4);
            }
            for _ in 0..100 {
                c.reuse.record(2048);
            }
            c.accesses[Region::Private.index()] = 1000;
            c.cycles[Region::Private.index()] = 900 + 100 * 18;
            per_core.push(c);
        }
        let mut p = Profile {
            runs: 1,
            total_cycles: total,
            timed_cycles: total,
            instructions: 0,
            exit_code: 0,
            per_unit_cycles: vec![total; cores],
            per_core,
            regions: Default::default(),
            sync: SyncSummary {
                barrier_epochs: epochs,
                ..SyncSummary::default()
            },
        };
        p.regions[Region::SharedDram.index()].cycles = 8_000;
        p
    }

    #[test]
    fn seed_point_is_reproduced_exactly() {
        let profile = synthetic_profile(4, 100_000, 3);
        let cfg = SccConfig::table_6_1();
        let pred = CyclePredictor::fit(&profile, 4, &cfg, FitOptions::default());
        assert_eq!(pred.predict(4), 100_000);
    }

    #[test]
    fn partitioned_work_shrinks_with_more_cores() {
        let profile = synthetic_profile(2, 200_000, 0);
        let cfg = SccConfig::table_6_1();
        let pred = CyclePredictor::fit(&profile, 2, &cfg, FitOptions::default());
        let t4 = pred.predict(4);
        let t16 = pred.predict(16);
        assert!(t4 < 200_000, "more cores, less time: {t4}");
        assert!(t16 < t4, "monotone without barriers: {t16} < {t4}");
    }

    #[test]
    fn barrier_bill_grows_with_participants() {
        // A barrier-heavy profile with almost no work: scaling up cores
        // must eventually cost more than it saves.
        let mut profile = synthetic_profile(2, 50_000, 400);
        for c in &mut profile.per_core {
            *c = CoreProfile::default();
        }
        profile.regions = Default::default();
        let cfg = SccConfig::table_6_1();
        let pred = CyclePredictor::fit(&profile, 2, &cfg, FitOptions::default());
        assert!(
            pred.predict(32) > pred.predict(2),
            "400 epochs × 32 cores × 16 cycles dominates"
        );
    }

    #[test]
    fn serialized_surface_is_flat() {
        let profile = synthetic_profile(1, 77_777, 0);
        let cfg = SccConfig::table_6_1();
        let pred = CyclePredictor::fit(
            &profile,
            4,
            &cfg,
            FitOptions {
                scaling: WorkScaling::Serialized,
                ..FitOptions::default()
            },
        );
        assert_eq!(pred.predict(2), 77_777);
        assert_eq!(pred.predict(32), 77_777);
    }

    #[test]
    fn master_scaling_uses_n_minus_one_workers() {
        assert_eq!(WorkScaling::PartitionedWithMaster.workers(2), 1);
        assert_eq!(WorkScaling::PartitionedWithMaster.workers(8), 7);
        assert_eq!(WorkScaling::Partitioned.workers(8), 8);
        assert_eq!(WorkScaling::Serialized.workers(8), 1);
    }

    #[test]
    fn error_helpers() {
        assert!((relative_error(110, 100) - 0.1).abs() < 1e-12);
        assert!((relative_error(90, 100) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0, 0), 0.0);
        assert_eq!(absolute_error(90, 100), 10);
    }

    #[test]
    fn flat_cache_skips_the_working_set_transform() {
        let profile = synthetic_profile(2, 100_000, 0);
        let cfg = SccConfig::table_6_1();
        let hier = CyclePredictor::fit(&profile, 2, &cfg, FitOptions::default());
        let flat = CyclePredictor::fit(
            &profile,
            2,
            &cfg,
            FitOptions {
                cache: CacheModel::Flat,
                ..FitOptions::default()
            },
        );
        // Hierarchy: at 8 cores the 2048-distance tail shifts into L1
        // range, so predicted private latency drops below flat's.
        assert!(hier.predict(8) <= flat.predict(8));
        assert_eq!(flat.predict(2), 100_000, "seed exact either way");
    }
}
