//! Source locations and spans for diagnostics.
//!
//! Every token, and through it every AST node, carries a [`Span`] pointing
//! back into the original C source so analyses and the translator can report
//! precise locations.

use std::fmt;

/// A position in the source text (1-based line and column).
///
/// ```
/// use hsm_cir::span::Loc;
/// let loc = Loc::new(3, 14);
/// assert_eq!(loc.to_string(), "3:14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Loc {
    /// Creates a location from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        Loc { line, col }
    }

    /// The first position of a source file.
    pub fn start() -> Self {
        Loc { line: 1, col: 1 }
    }
}

impl Default for Loc {
    fn default() -> Self {
        Loc::start()
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A contiguous region of source text, `[start, end)`.
///
/// ```
/// use hsm_cir::span::{Loc, Span};
/// let span = Span::new(Loc::new(1, 1), Loc::new(1, 4));
/// assert_eq!(span.to_string(), "1:1-1:4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start of the region (inclusive).
    pub start: Loc,
    /// End of the region (exclusive).
    pub end: Loc,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: Loc, end: Loc) -> Self {
        Span { start, end }
    }

    /// A span covering a single position.
    pub fn point(loc: Loc) -> Self {
        Span {
            start: loc,
            end: loc,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ordering_is_line_major() {
        assert!(Loc::new(1, 9) < Loc::new(2, 1));
        assert!(Loc::new(2, 1) < Loc::new(2, 2));
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(Loc::new(1, 1), Loc::new(1, 5));
        let b = Span::new(Loc::new(2, 3), Loc::new(2, 9));
        let m = a.merge(b);
        assert_eq!(m.start, Loc::new(1, 1));
        assert_eq!(m.end, Loc::new(2, 9));
    }

    #[test]
    fn span_merge_is_commutative() {
        let a = Span::new(Loc::new(1, 1), Loc::new(1, 5));
        let b = Span::new(Loc::new(2, 3), Loc::new(2, 9));
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn default_loc_is_start() {
        assert_eq!(Loc::default(), Loc::new(1, 1));
    }
}
