//! Symbol tables: every named variable and function in a translation unit,
//! with its type and defining scope.
//!
//! Stage 1 of the paper ("Variable Scope Analysis") begins by separating
//! locals from globals; this module supplies that classification to all
//! later stages.

use crate::ast::{ForInit, FunctionDef, Item, Stmt, StmtKind, Storage, TranslationUnit};
use crate::span::Span;
use crate::types::CType;
use std::collections::HashMap;
use std::fmt;

/// Where a symbol is defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Scope {
    /// File scope (a global variable or function).
    Global,
    /// Local to the named function (declared in its body).
    Local(String),
    /// A parameter of the named function.
    Param(String),
}

impl Scope {
    /// The enclosing function name for locals/params, `None` for globals.
    pub fn function(&self) -> Option<&str> {
        match self {
            Scope::Global => None,
            Scope::Local(f) | Scope::Param(f) => Some(f),
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Global => write!(f, "global"),
            Scope::Local(name) => write!(f, "local({name})"),
            Scope::Param(name) => write!(f, "param({name})"),
        }
    }
}

/// What kind of entity a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A data variable.
    Variable,
    /// A function definition or prototype.
    Function,
    /// A typedef alias.
    TypeAlias,
}

/// A named entity in the program.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// The symbol's name.
    pub name: String,
    /// Its declared type.
    pub ty: CType,
    /// Its scope.
    pub scope: Scope,
    /// What it names.
    pub kind: SymbolKind,
    /// Declaration site.
    pub span: Span,
    /// Whether the declaration carried an initializer.
    pub has_init: bool,
}

/// The symbol table for one translation unit.
///
/// Lookup follows C scoping: a local (or parameter) shadows a global of the
/// same name within its function.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    globals: HashMap<String, Symbol>,
    /// function name -> (symbol name -> symbol)
    locals: HashMap<String, HashMap<String, Symbol>>,
    /// Insertion-ordered names for stable reporting.
    order: Vec<(Option<String>, String)>,
}

impl SymbolTable {
    /// Builds the symbol table for `tu`.
    ///
    /// ```
    /// # fn main() -> Result<(), hsm_cir::error::ParseError> {
    /// use hsm_cir::{parser::parse, symbols::SymbolTable};
    /// let tu = parse("int g; int main() { int l; return l + g; }")?;
    /// let syms = SymbolTable::build(&tu);
    /// assert!(syms.lookup("main", "l").is_some());
    /// assert_eq!(syms.lookup("main", "g").unwrap().scope.function(), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(tu: &TranslationUnit) -> Self {
        let mut table = SymbolTable::default();
        for item in &tu.items {
            match item {
                Item::Decl(d) => {
                    for v in &d.vars {
                        let kind = match (&d.storage, &v.ty) {
                            (Storage::Typedef, _) => SymbolKind::TypeAlias,
                            (_, CType::Function { .. }) => SymbolKind::Function,
                            _ => SymbolKind::Variable,
                        };
                        table.insert_global(Symbol {
                            name: v.name.clone(),
                            ty: v.ty.clone(),
                            scope: Scope::Global,
                            kind,
                            span: v.span,
                            has_init: v.init.is_some(),
                        });
                    }
                }
                Item::Func(f) => {
                    table.insert_global(Symbol {
                        name: f.name.clone(),
                        ty: CType::Function {
                            ret: Box::new(f.ret.clone()),
                            params: f.params.iter().map(|p| p.ty.clone()).collect(),
                        },
                        scope: Scope::Global,
                        kind: SymbolKind::Function,
                        span: f.span,
                        has_init: true,
                    });
                    table.collect_function(f);
                }
            }
        }
        table
    }

    fn insert_global(&mut self, sym: Symbol) {
        if !self.globals.contains_key(&sym.name) {
            self.order.push((None, sym.name.clone()));
        }
        // A definition (has_init / function body) wins over a prototype.
        match self.globals.get(&sym.name) {
            Some(existing) if existing.has_init && !sym.has_init => {}
            _ => {
                self.globals.insert(sym.name.clone(), sym);
            }
        }
    }

    fn insert_local(&mut self, func: &str, sym: Symbol) {
        let entry = self.locals.entry(func.to_string()).or_default();
        if !entry.contains_key(&sym.name) {
            self.order.push((Some(func.to_string()), sym.name.clone()));
        }
        entry.insert(sym.name.clone(), sym);
    }

    fn collect_function(&mut self, f: &FunctionDef) {
        for p in &f.params {
            if p.name.is_empty() {
                continue;
            }
            self.insert_local(
                &f.name,
                Symbol {
                    name: p.name.clone(),
                    ty: p.ty.clone(),
                    scope: Scope::Param(f.name.clone()),
                    kind: SymbolKind::Variable,
                    span: f.span,
                    has_init: true,
                },
            );
        }
        for s in &f.body {
            self.collect_stmt(&f.name, s);
        }
    }

    fn collect_stmt(&mut self, func: &str, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                for v in &d.vars {
                    self.insert_local(
                        func,
                        Symbol {
                            name: v.name.clone(),
                            ty: v.ty.clone(),
                            scope: Scope::Local(func.to_string()),
                            kind: SymbolKind::Variable,
                            span: v.span,
                            has_init: v.init.is_some(),
                        },
                    );
                }
            }
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.collect_stmt(func, st);
                }
            }
            StmtKind::If(_, then, els) => {
                self.collect_stmt(func, then);
                if let Some(e) = els {
                    self.collect_stmt(func, e);
                }
            }
            StmtKind::While(_, body) | StmtKind::DoWhile(body, _) => self.collect_stmt(func, body),
            StmtKind::Switch(_, body) => {
                for st in body {
                    self.collect_stmt(func, st);
                }
            }
            StmtKind::For(init, _, _, body) => {
                if let Some(ForInit::Decl(d)) = init {
                    for v in &d.vars {
                        self.insert_local(
                            func,
                            Symbol {
                                name: v.name.clone(),
                                ty: v.ty.clone(),
                                scope: Scope::Local(func.to_string()),
                                kind: SymbolKind::Variable,
                                span: v.span,
                                has_init: v.init.is_some(),
                            },
                        );
                    }
                }
                self.collect_stmt(func, body);
            }
            _ => {}
        }
    }

    /// Looks up `name` as seen from inside `func`: locals and parameters
    /// shadow globals.
    pub fn lookup(&self, func: &str, name: &str) -> Option<&Symbol> {
        self.locals
            .get(func)
            .and_then(|m| m.get(name))
            .or_else(|| self.globals.get(name))
    }

    /// Looks up a global symbol by name.
    pub fn global(&self, name: &str) -> Option<&Symbol> {
        self.globals.get(name)
    }

    /// All global data variables (functions and typedefs excluded), in
    /// declaration order.
    pub fn global_variables(&self) -> Vec<&Symbol> {
        self.order
            .iter()
            .filter(|(f, _)| f.is_none())
            .filter_map(|(_, n)| self.globals.get(n))
            .filter(|s| s.kind == SymbolKind::Variable)
            .collect()
    }

    /// All local variables and parameters of `func`, in declaration order.
    pub fn locals_of(&self, func: &str) -> Vec<&Symbol> {
        self.order
            .iter()
            .filter(|(f, _)| f.as_deref() == Some(func))
            .filter_map(|(f, n)| self.locals.get(f.as_deref().unwrap())?.get(n))
            .collect()
    }

    /// Every symbol in the unit, in declaration order (globals and locals).
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.order.iter().filter_map(move |(f, n)| match f {
            None => self.globals.get(n),
            Some(func) => self.locals.get(func).and_then(|m| m.get(n)),
        })
    }

    /// Names of all defined functions.
    pub fn function_names(&self) -> Vec<&str> {
        self.order
            .iter()
            .filter(|(f, _)| f.is_none())
            .filter_map(|(_, n)| self.globals.get(n))
            .filter(|s| s.kind == SymbolKind::Function)
            .map(|s| s.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const EXAMPLE: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    return tid;
}

int main() {
    int local = 0;
    int tmp = 1;
    pthread_t threads[3];
    int rc;
    return 0;
}
"#;

    #[test]
    fn classifies_globals_and_locals() {
        let tu = parse(EXAMPLE).unwrap();
        let t = SymbolTable::build(&tu);
        let globals: Vec<_> = t
            .global_variables()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(globals, vec!["global", "ptr", "sum"]);
        let main_locals: Vec<_> = t.locals_of("main").iter().map(|s| s.name.clone()).collect();
        assert_eq!(main_locals, vec!["local", "tmp", "threads", "rc"]);
        let tf_locals: Vec<_> = t.locals_of("tf").iter().map(|s| s.name.clone()).collect();
        assert_eq!(tf_locals, vec!["tid", "tLocal"]);
    }

    #[test]
    fn params_are_scoped_to_their_function() {
        let tu = parse(EXAMPLE).unwrap();
        let t = SymbolTable::build(&tu);
        let tid = t.lookup("tf", "tid").unwrap();
        assert_eq!(tid.scope, Scope::Param("tf".into()));
        assert!(t.lookup("main", "tid").is_none());
    }

    #[test]
    fn locals_shadow_globals() {
        let tu = parse("int x; int main() { int x; return x; }").unwrap();
        let t = SymbolTable::build(&tu);
        let seen = t.lookup("main", "x").unwrap();
        assert_eq!(seen.scope, Scope::Local("main".into()));
        // From another function the global is visible.
        assert_eq!(t.lookup("other", "x").unwrap().scope, Scope::Global);
    }

    #[test]
    fn functions_are_symbols() {
        let tu = parse(EXAMPLE).unwrap();
        let t = SymbolTable::build(&tu);
        assert_eq!(t.function_names(), vec!["tf", "main"]);
        assert_eq!(t.global("tf").unwrap().kind, SymbolKind::Function);
    }

    #[test]
    fn definition_beats_prototype() {
        let tu = parse("int f(int); int f(int x) { return x; }").unwrap();
        let t = SymbolTable::build(&tu);
        let f = t.global("f").unwrap();
        assert!(f.has_init, "definition should win");
    }

    #[test]
    fn for_loop_decl_is_local() {
        let tu = parse("int main() { for (int i = 0; i < 3; i++) { } return 0; }").unwrap();
        let t = SymbolTable::build(&tu);
        assert!(t.lookup("main", "i").is_some());
    }

    #[test]
    fn has_init_reflects_initializers() {
        let tu = parse("int a; int b = 1;").unwrap();
        let t = SymbolTable::build(&tu);
        assert!(!t.global("a").unwrap().has_init);
        assert!(t.global("b").unwrap().has_init);
    }

    #[test]
    fn iter_walks_declaration_order() {
        let tu = parse("int a; int main() { int z; return 0; } int b;").unwrap();
        let t = SymbolTable::build(&tu);
        let names: Vec<_> = t.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["a", "main", "z", "b"]);
    }
}
