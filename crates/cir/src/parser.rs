//! Recursive-descent parser producing a [`TranslationUnit`].
//!
//! The grammar is the C89 subset used by pthread benchmark programs:
//! global/local declarations with initializers, function definitions and
//! prototypes, all control flow, the full expression grammar with correct
//! precedence, casts, `sizeof`, and pointer/array declarators. Typedef'd
//! library names (`pthread_t`, `size_t`, …) are recognized as type names via
//! a registry that `typedef` declarations extend.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::span::{Loc, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::CType;
use std::collections::HashSet;

/// Parses C source text into a [`TranslationUnit`].
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical errors or constructs outside the
/// supported subset.
///
/// ```
/// # fn main() -> Result<(), hsm_cir::error::ParseError> {
/// use hsm_cir::parser::parse;
/// let tu = parse("int global; int main() { return 0; }")?;
/// assert!(tu.function("main").is_some());
/// assert_eq!(tu.global_decls().count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<TranslationUnit, ParseError> {
    let tokens = lex(source)?;
    Parser::new(tokens).run()
}

/// Names treated as type identifiers in addition to keywords.
fn builtin_type_names() -> HashSet<String> {
    [
        "pthread_t",
        "pthread_attr_t",
        "pthread_mutex_t",
        "pthread_mutexattr_t",
        "pthread_cond_t",
        "pthread_barrier_t",
        "pthread_barrierattr_t",
        "size_t",
        "ssize_t",
        "FILE",
        "int8_t",
        "int16_t",
        "int32_t",
        "int64_t",
        "uint8_t",
        "uint16_t",
        "uint32_t",
        "uint64_t",
        "RCCE_FLAG",
        "RCCE_COMM",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    type_names: HashSet<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
            type_names: builtin_type_names(),
        }
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn loc(&self) -> Loc {
        self.tokens[self.pos].span.start
    }

    fn span_here(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.loc(),
                format!("expected `{p}`, found `{}`", self.peek()),
            ))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span_here();
                self.bump();
                Ok((name, span))
            }
            other => Err(ParseError::new(
                self.loc(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn run(mut self) -> Result<TranslationUnit, ParseError> {
        let mut tu = TranslationUnit::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::PreprocLine(line) => {
                    tu.preproc.push(line.clone());
                    self.bump();
                }
                _ => {
                    let item = self.parse_item()?;
                    tu.items.push(item);
                }
            }
        }
        tu.next_id = self.next_id;
        Ok(tu)
    }

    // ---------------------------------------------------------------- types

    fn starts_type(&self) -> bool {
        self.starts_type_at(0)
    }

    fn starts_type_at(&self, off: usize) -> bool {
        match self.peek_at(off) {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Const
                    | Keyword::Volatile
                    | Keyword::Static
                    | Keyword::Extern
                    | Keyword::Typedef
                    | Keyword::Struct
                    | Keyword::Union
            ),
            TokenKind::Ident(name) => self.type_names.contains(name),
            _ => false,
        }
    }

    /// Parses storage class + base type specifiers (no declarator part).
    fn parse_base_type(&mut self) -> Result<(Storage, CType), ParseError> {
        let mut storage = Storage::None;
        let mut unsigned = false;
        let mut longs = 0u8;
        let mut base: Option<CType> = None;
        loop {
            match self.peek().clone() {
                TokenKind::Keyword(Keyword::Static) => {
                    storage = Storage::Static;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Extern) => {
                    storage = Storage::Extern;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Typedef) => {
                    storage = Storage::Typedef;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Const)
                | TokenKind::Keyword(Keyword::Volatile)
                | TokenKind::Keyword(Keyword::Signed) => {
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Unsigned) => {
                    unsigned = true;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Long) => {
                    longs += 1;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Void) => {
                    base = Some(CType::Void);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Char) => {
                    base = Some(CType::Char);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Short) => {
                    base = Some(CType::Short);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Int) => {
                    base = Some(CType::Int);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Float) => {
                    base = Some(CType::Float);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Double) => {
                    base = Some(CType::Double);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Struct) | TokenKind::Keyword(Keyword::Union) => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    base = Some(CType::Named(format!("struct {name}")));
                }
                TokenKind::Ident(name)
                    if base.is_none()
                        && longs == 0
                        && !unsigned
                        && self.type_names.contains(&name) =>
                {
                    base = Some(CType::Named(name.clone()));
                    self.bump();
                }
                _ => break,
            }
        }
        let ty = match (base, longs, unsigned) {
            (Some(CType::Int) | None, 1, false) => CType::Long,
            (Some(CType::Int) | None, _, false) if longs >= 2 => CType::LongLong,
            (Some(CType::Int) | None, n, true) if n >= 1 => CType::ULong,
            (Some(CType::Int) | None, 0, true) => CType::UInt,
            (Some(CType::Double), _, _) => CType::Double,
            (Some(t), _, _) => t,
            (None, _, _) => return Err(ParseError::new(self.loc(), "expected type specifier")),
        };
        Ok((storage, ty))
    }

    /// Parses a declarator: pointer stars, name, array/function suffixes.
    /// Returns (name, full type, span).
    fn parse_declarator(&mut self, base: &CType) -> Result<(String, CType, Span), ParseError> {
        let mut stars = 0usize;
        let start = self.loc();
        while self.eat_punct(Punct::Star) {
            stars += 1;
            // const/volatile after star
            while matches!(
                self.peek(),
                TokenKind::Keyword(Keyword::Const) | TokenKind::Keyword(Keyword::Volatile)
            ) {
                self.bump();
            }
        }
        let (name, span) = self.expect_ident()?;
        let mut ty = base.clone();
        for _ in 0..stars {
            ty = ty.ptr_to();
        }
        // Array suffixes apply outside-in: `int a[2][3]` is array 2 of array 3.
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            if self.eat_punct(Punct::RBracket) {
                dims.push(None);
            } else {
                let len = self.parse_const_len()?;
                self.expect_punct(Punct::RBracket)?;
                dims.push(Some(len));
            }
        }
        for dim in dims.into_iter().rev() {
            ty = ty.array_of(dim);
        }
        Ok((name, ty, Span::new(start, span.end)))
    }

    fn parse_const_len(&mut self) -> Result<usize, ParseError> {
        // Array lengths in the subset must fold to a constant; support
        // literals and simple products/sums of literals.
        let loc = self.loc();
        let expr = self.parse_assignment()?;
        const_fold(&expr)
            .ok_or_else(|| ParseError::new(loc, "array length must be a constant expression"))
    }

    // ---------------------------------------------------------------- items

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        let start = self.loc();
        let (storage, base) = self.parse_base_type()?;
        // `struct x;` style forward decls unsupported; require declarator.
        let (name, ty, _span) = self.parse_declarator(&base)?;

        if storage == Storage::Typedef {
            self.type_names.insert(name.clone());
            self.expect_punct(Punct::Semi)?;
            let id = self.fresh();
            let vid = self.fresh();
            return Ok(Item::Decl(Declaration {
                id,
                storage,
                vars: vec![VarDecl {
                    id: vid,
                    name,
                    ty,
                    init: None,
                    span: Span::new(start, self.loc()),
                }],
                span: Span::new(start, self.loc()),
            }));
        }

        if self.peek() == &TokenKind::Punct(Punct::LParen) {
            // Function definition or prototype.
            self.bump();
            let params = self.parse_params()?;
            self.expect_punct(Punct::RParen)?;
            if self.eat_punct(Punct::Semi) {
                // Prototype: record as a declaration with function type.
                let id = self.fresh();
                let vid = self.fresh();
                let fty = CType::Function {
                    ret: Box::new(ty),
                    params: params.iter().map(|p| p.ty.clone()).collect(),
                };
                return Ok(Item::Decl(Declaration {
                    id,
                    storage,
                    vars: vec![VarDecl {
                        id: vid,
                        name,
                        ty: fty,
                        init: None,
                        span: Span::new(start, self.loc()),
                    }],
                    span: Span::new(start, self.loc()),
                }));
            }
            self.expect_punct(Punct::LBrace)?;
            let mut body = Vec::new();
            while !self.eat_punct(Punct::RBrace) {
                if self.peek() == &TokenKind::Eof {
                    return Err(ParseError::new(
                        self.loc(),
                        "unexpected end of file in function body",
                    ));
                }
                body.push(self.parse_stmt()?);
            }
            let id = self.fresh();
            return Ok(Item::Func(FunctionDef {
                id,
                name,
                ret: ty,
                params,
                body,
                span: Span::new(start, self.loc()),
            }));
        }

        // Global variable declaration (possibly multiple declarators).
        let decl = self.finish_declaration(start, storage, base, name, ty)?;
        Ok(Item::Decl(decl))
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        if self.peek() == &TokenKind::Punct(Punct::RParen) {
            return Ok(params);
        }
        // `(void)` means no parameters.
        if self.peek() == &TokenKind::Keyword(Keyword::Void)
            && self.peek_at(1) == &TokenKind::Punct(Punct::RParen)
        {
            self.bump();
            return Ok(params);
        }
        loop {
            let (_, base) = self.parse_base_type()?;
            // Parameter declarators may be abstract (unnamed) in prototypes.
            let mut stars = 0usize;
            while self.eat_punct(Punct::Star) {
                stars += 1;
            }
            let name = match self.peek().clone() {
                TokenKind::Ident(n) => {
                    self.bump();
                    n
                }
                _ => String::new(),
            };
            let mut ty = base;
            for _ in 0..stars {
                ty = ty.ptr_to();
            }
            // Array params decay to pointers.
            let mut dims = Vec::new();
            while self.eat_punct(Punct::LBracket) {
                if self.eat_punct(Punct::RBracket) {
                    dims.push(None);
                } else {
                    let len = self.parse_const_len()?;
                    self.expect_punct(Punct::RBracket)?;
                    dims.push(Some(len));
                }
            }
            if !dims.is_empty() {
                for dim in dims.into_iter().skip(1).rev() {
                    ty = ty.array_of(dim);
                }
                ty = ty.ptr_to();
            }
            params.push(Param { name, ty });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn finish_declaration(
        &mut self,
        start: Loc,
        storage: Storage,
        base: CType,
        first_name: String,
        first_ty: CType,
    ) -> Result<Declaration, ParseError> {
        let mut vars = Vec::new();
        let mut name = first_name;
        let mut ty = first_ty;
        loop {
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            let vid = self.fresh();
            vars.push(VarDecl {
                id: vid,
                name,
                ty,
                init,
                span: Span::new(start, self.loc()),
            });
            if self.eat_punct(Punct::Comma) {
                let (n, t, _) = self.parse_declarator(&base)?;
                name = n;
                ty = t;
            } else {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        let id = self.fresh();
        Ok(Declaration {
            id,
            storage,
            vars,
            span: Span::new(start, self.loc()),
        })
    }

    fn parse_initializer(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == &TokenKind::Punct(Punct::LBrace) {
            let start = self.loc();
            self.bump();
            let mut items = Vec::new();
            if !self.eat_punct(Punct::RBrace) {
                loop {
                    items.push(self.parse_initializer()?);
                    if self.eat_punct(Punct::Comma) {
                        if self.eat_punct(Punct::RBrace) {
                            break;
                        }
                    } else {
                        self.expect_punct(Punct::RBrace)?;
                        break;
                    }
                }
            }
            let id = self.fresh();
            Ok(Expr {
                id,
                kind: ExprKind::InitList(items),
                span: Span::new(start, self.loc()),
            })
        } else {
            self.parse_assignment()
        }
    }

    // ----------------------------------------------------------- statements

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.loc();
        let kind = match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat_punct(Punct::RBrace) {
                    if self.peek() == &TokenKind::Eof {
                        return Err(ParseError::new(
                            self.loc(),
                            "unexpected end of file in block",
                        ));
                    }
                    stmts.push(self.parse_stmt()?);
                }
                StmtKind::Block(stmts)
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                StmtKind::If(cond, then, els)
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                StmtKind::While(cond, body)
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(ParseError::new(
                        self.loc(),
                        "expected `while` after do body",
                    ));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                StmtKind::DoWhile(body, cond)
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.starts_type() {
                    let decl = self.parse_local_decl()?;
                    Some(ForInit::Decl(decl))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(ForInit::Expr(e))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                StmtKind::For(init, cond, step, body)
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let scrutinee = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::LBrace)?;
                let mut body = Vec::new();
                while !self.eat_punct(Punct::RBrace) {
                    if self.peek() == &TokenKind::Eof {
                        return Err(ParseError::new(
                            self.loc(),
                            "unexpected end of file in switch body",
                        ));
                    }
                    body.push(self.parse_stmt()?);
                }
                StmtKind::Switch(scrutinee, body)
            }
            TokenKind::Keyword(Keyword::Case) => {
                self.bump();
                let loc = self.loc();
                let value = self.parse_ternary()?;
                let folded = crate::parser::const_fold(&value).ok_or_else(|| {
                    ParseError::new(loc, "case label must be a constant expression")
                })?;
                self.expect_punct(Punct::Colon)?;
                StmtKind::Case(folded as i64)
            }
            TokenKind::Keyword(Keyword::Default) => {
                self.bump();
                self.expect_punct(Punct::Colon)?;
                StmtKind::Default
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let e = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                StmtKind::Return(e)
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                StmtKind::Break
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                StmtKind::Continue
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                StmtKind::Expr(None)
            }
            _ if self.starts_type() => {
                let decl = self.parse_local_decl()?;
                StmtKind::Decl(decl)
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                StmtKind::Expr(Some(e))
            }
        };
        let id = self.fresh();
        Ok(Stmt {
            id,
            kind,
            span: Span::new(start, self.loc()),
        })
    }

    fn parse_local_decl(&mut self) -> Result<Declaration, ParseError> {
        let start = self.loc();
        let (storage, base) = self.parse_base_type()?;
        let (name, ty, _) = self.parse_declarator(&base)?;
        if storage == Storage::Typedef {
            self.type_names.insert(name.clone());
        }
        self.finish_declaration(start, storage, base, name, ty)
    }

    // ---------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_assignment()?;
        while self.peek() == &TokenKind::Punct(Punct::Comma) {
            self.bump();
            let rhs = self.parse_assignment()?;
            let span = lhs.span.merge(rhs.span);
            let id = self.fresh();
            lhs = Expr {
                id,
                kind: ExprKind::Comma(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Eq) => AssignOp::Assign,
            TokenKind::Punct(Punct::PlusEq) => AssignOp::AddAssign,
            TokenKind::Punct(Punct::MinusEq) => AssignOp::SubAssign,
            TokenKind::Punct(Punct::StarEq) => AssignOp::MulAssign,
            TokenKind::Punct(Punct::SlashEq) => AssignOp::DivAssign,
            TokenKind::Punct(Punct::PercentEq) => AssignOp::RemAssign,
            TokenKind::Punct(Punct::ShlEq) => AssignOp::ShlAssign,
            TokenKind::Punct(Punct::ShrEq) => AssignOp::ShrAssign,
            TokenKind::Punct(Punct::AmpEq) => AssignOp::AndAssign,
            TokenKind::Punct(Punct::CaretEq) => AssignOp::XorAssign,
            TokenKind::Punct(Punct::PipeEq) => AssignOp::OrAssign,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assignment()?;
        let span = lhs.span.merge(rhs.span);
        let id = self.fresh();
        Ok(Expr {
            id,
            kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            span,
        })
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.parse_assignment()?;
            let span = cond.span.merge(els.span);
            let id = self.fresh();
            Ok(Expr {
                id,
                kind: ExprKind::Ternary(Box::new(cond), Box::new(then), Box::new(els)),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_op_at(&self, min_prec: u8) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        let (op, prec) = match self.peek() {
            TokenKind::Punct(Punct::PipePipe) => (LogOr, 1),
            TokenKind::Punct(Punct::AmpAmp) => (LogAnd, 2),
            TokenKind::Punct(Punct::Pipe) => (BitOr, 3),
            TokenKind::Punct(Punct::Caret) => (BitXor, 4),
            TokenKind::Punct(Punct::Amp) => (BitAnd, 5),
            TokenKind::Punct(Punct::EqEq) => (Eq, 6),
            TokenKind::Punct(Punct::BangEq) => (Ne, 6),
            TokenKind::Punct(Punct::Lt) => (Lt, 7),
            TokenKind::Punct(Punct::Gt) => (Gt, 7),
            TokenKind::Punct(Punct::Le) => (Le, 7),
            TokenKind::Punct(Punct::Ge) => (Ge, 7),
            TokenKind::Punct(Punct::Shl) => (Shl, 8),
            TokenKind::Punct(Punct::Shr) => (Shr, 8),
            TokenKind::Punct(Punct::Plus) => (Add, 9),
            TokenKind::Punct(Punct::Minus) => (Sub, 9),
            TokenKind::Punct(Punct::Star) => (Mul, 10),
            TokenKind::Punct(Punct::Slash) => (Div, 10),
            TokenKind::Punct(Punct::Percent) => (Rem, 10),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binary_op_at(min_prec) {
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            let id = self.fresh();
            lhs = Expr {
                id,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    /// Whether a `(` at the current position starts a cast.
    fn lparen_starts_cast(&self) -> bool {
        if self.peek() != &TokenKind::Punct(Punct::LParen) {
            return false;
        }
        self.starts_type_at(1)
            && !matches!(
                self.peek_at(1),
                TokenKind::Keyword(Keyword::Static)
                    | TokenKind::Keyword(Keyword::Extern)
                    | TokenKind::Keyword(Keyword::Typedef)
            )
    }

    fn parse_cast_type(&mut self) -> Result<CType, ParseError> {
        let (_, base) = self.parse_base_type()?;
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let start = self.loc();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::Addr),
            TokenKind::Punct(Punct::Star) => Some(UnaryOp::Deref),
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Punct(Punct::PlusPlus) => Some(UnaryOp::PreInc),
            TokenKind::Punct(Punct::MinusMinus) => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.parse_unary()?;
            let span = Span::new(start, inner.span.end);
            let id = self.fresh();
            return Ok(Expr {
                id,
                kind: ExprKind::Unary(op, Box::new(inner)),
                span,
            });
        }
        if self.peek() == &TokenKind::Keyword(Keyword::Sizeof) {
            self.bump();
            if self.lparen_starts_cast() {
                self.bump(); // (
                let ty = self.parse_cast_type()?;
                self.expect_punct(Punct::RParen)?;
                let id = self.fresh();
                return Ok(Expr {
                    id,
                    kind: ExprKind::SizeofType(ty),
                    span: Span::new(start, self.loc()),
                });
            }
            let inner = self.parse_unary()?;
            let span = Span::new(start, inner.span.end);
            let id = self.fresh();
            return Ok(Expr {
                id,
                kind: ExprKind::SizeofExpr(Box::new(inner)),
                span,
            });
        }
        if self.lparen_starts_cast() {
            self.bump(); // (
            let ty = self.parse_cast_type()?;
            self.expect_punct(Punct::RParen)?;
            let inner = self.parse_unary()?;
            let span = Span::new(start, inner.span.end);
            let id = self.fresh();
            return Ok(Expr {
                id,
                kind: ExprKind::Cast(ty, Box::new(inner)),
                span,
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assignment()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    let span = Span::new(e.span.start, self.loc());
                    let id = self.fresh();
                    e = Expr {
                        id,
                        kind: ExprKind::Call(Box::new(e), args),
                        span,
                    };
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = Span::new(e.span.start, self.loc());
                    let id = self.fresh();
                    e = Expr {
                        id,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        span,
                    };
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    let id = self.fresh();
                    e = Expr {
                        id,
                        kind: ExprKind::Member(Box::new(e), field, false),
                        span,
                    };
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    let id = self.fresh();
                    e = Expr {
                        id,
                        kind: ExprKind::Member(Box::new(e), field, true),
                        span,
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    let span = Span::new(e.span.start, self.loc());
                    let id = self.fresh();
                    e = Expr {
                        id,
                        kind: ExprKind::PostIncDec(Box::new(e), true),
                        span,
                    };
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    let span = Span::new(e.span.start, self.loc());
                    let id = self.fresh();
                    e = Expr {
                        id,
                        kind: ExprKind::PostIncDec(Box::new(e), false),
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.loc();
        let span = self.span_here();
        let kind = match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                ExprKind::IntLit(v)
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                ExprKind::FloatLit(v)
            }
            TokenKind::CharLit(c) => {
                self.bump();
                ExprKind::CharLit(c)
            }
            TokenKind::StrLit(s) => {
                self.bump();
                // Adjacent string literals concatenate.
                let mut full = s;
                while let TokenKind::StrLit(next) = self.peek().clone() {
                    full.push_str(&next);
                    self.bump();
                }
                ExprKind::StrLit(full)
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Ident(name)
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(e);
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("expected expression, found `{other}`"),
                ))
            }
        };
        let id = self.fresh();
        Ok(Expr { id, kind, span })
    }
}

/// Constant-folds an expression to a `usize` if it is a compile-time integer
/// constant built from literals and `+ - * / << sizeof`.
pub fn const_fold(e: &Expr) -> Option<usize> {
    match &e.kind {
        ExprKind::IntLit(v) if *v >= 0 => Some(*v as usize),
        ExprKind::SizeofType(t) => Some(t.mem_size()),
        ExprKind::Binary(op, l, r) => {
            let (l, r) = (const_fold(l)?, const_fold(r)?);
            match op {
                BinaryOp::Add => Some(l + r),
                BinaryOp::Sub => l.checked_sub(r),
                BinaryOp::Mul => Some(l * r),
                BinaryOp::Div if r != 0 => Some(l / r),
                BinaryOp::Shl => Some(l << r),
                _ => None,
            }
        }
        ExprKind::Cast(_, inner) => const_fold(inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE_4_1: &str = r#"
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    #[test]
    fn parses_example_code_4_1() {
        let tu = parse(EXAMPLE_4_1).expect("parse example 4.1");
        assert_eq!(tu.preproc.len(), 2);
        assert_eq!(tu.functions().count(), 2);
        assert_eq!(tu.global_decls().count(), 3);
        let main = tu.function("main").expect("main");
        assert_eq!(main.ret, CType::Int);
        let tf = tu.function("tf").expect("tf");
        assert_eq!(tf.ret, CType::Void.ptr_to());
        assert_eq!(tf.params.len(), 1);
        assert_eq!(tf.params[0].name, "tid");
        assert_eq!(tf.params[0].ty, CType::Void.ptr_to());
    }

    #[test]
    fn global_array_with_init_list() {
        let tu = parse("int sum[3] = {0};").expect("parse");
        let decl = tu.global_decls().next().expect("decl");
        let v = &decl.vars[0];
        assert_eq!(v.name, "sum");
        assert_eq!(v.ty, CType::Int.array_of(Some(3)));
        assert!(matches!(
            v.init.as_ref().map(|e| &e.kind),
            Some(ExprKind::InitList(items)) if items.len() == 1
        ));
    }

    #[test]
    fn multiple_declarators_share_base_type() {
        let tu = parse("int a, *b, c[4];").expect("parse");
        let decl = tu.global_decls().next().expect("decl");
        assert_eq!(decl.vars.len(), 3);
        assert_eq!(decl.vars[0].ty, CType::Int);
        assert_eq!(decl.vars[1].ty, CType::Int.ptr_to());
        assert_eq!(decl.vars[2].ty, CType::Int.array_of(Some(4)));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let tu = parse("int main() { int x; x = 1 + 2 * 3; return x; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(assign)) = &main.body[1].kind else {
            panic!("expected assignment statement");
        };
        let ExprKind::Assign(AssignOp::Assign, _, rhs) = &assign.kind else {
            panic!("expected assignment");
        };
        let ExprKind::Binary(BinaryOp::Add, _, add_rhs) = &rhs.kind else {
            panic!("expected + at top: {:?}", rhs.kind);
        };
        assert!(matches!(
            add_rhs.kind,
            ExprKind::Binary(BinaryOp::Mul, _, _)
        ));
    }

    #[test]
    fn cast_vs_parenthesized_expression() {
        let tu = parse("int main() { int a; double d; a = (int)d; a = (a) + 1; return a; }")
            .expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(e1)) = &main.body[2].kind else {
            panic!()
        };
        let ExprKind::Assign(_, _, r1) = &e1.kind else {
            panic!()
        };
        assert!(matches!(r1.kind, ExprKind::Cast(CType::Int, _)));
        let StmtKind::Expr(Some(e2)) = &main.body[3].kind else {
            panic!()
        };
        let ExprKind::Assign(_, _, r2) = &e2.kind else {
            panic!()
        };
        assert!(matches!(r2.kind, ExprKind::Binary(BinaryOp::Add, _, _)));
    }

    #[test]
    fn void_pointer_cast_of_argument() {
        let tu =
            parse("int f(int x); int main() { f((int)((void *) 5)); return 0; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(call)) = &main.body[0].kind else {
            panic!()
        };
        let ExprKind::Call(_, args) = &call.kind else {
            panic!()
        };
        let ExprKind::Cast(CType::Int, inner) = &args[0].kind else {
            panic!("outer cast")
        };
        assert!(matches!(&inner.kind, ExprKind::Cast(t, _) if *t == CType::Void.ptr_to()));
    }

    #[test]
    fn sizeof_type_and_expr() {
        let tu =
            parse("int main() { int x; x = sizeof(int) + sizeof x; return x; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(e)) = &main.body[1].kind else {
            panic!()
        };
        let ExprKind::Assign(_, _, rhs) = &e.kind else {
            panic!()
        };
        let ExprKind::Binary(BinaryOp::Add, l, r) = &rhs.kind else {
            panic!()
        };
        assert!(matches!(l.kind, ExprKind::SizeofType(CType::Int)));
        assert!(matches!(r.kind, ExprKind::SizeofExpr(_)));
    }

    #[test]
    fn pthread_t_is_a_type_name() {
        let tu = parse("int main() { pthread_t threads[3]; return 0; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Decl(d) = &main.body[0].kind else {
            panic!()
        };
        assert_eq!(
            d.vars[0].ty,
            CType::Named("pthread_t".into()).array_of(Some(3))
        );
    }

    #[test]
    fn typedef_extends_type_names() {
        let tu = parse("typedef int myint; myint x;").expect("parse");
        assert_eq!(tu.global_decls().count(), 2);
        let second = tu.global_decls().nth(1).unwrap();
        assert_eq!(second.vars[0].ty, CType::Named("myint".into()));
    }

    #[test]
    fn for_with_decl_init() {
        let tu = parse("int main() { for (int i = 0; i < 10; i++) { } return 0; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::For(Some(ForInit::Decl(d)), Some(_), Some(_), _) = &main.body[0].kind else {
            panic!()
        };
        assert_eq!(d.vars[0].name, "i");
    }

    #[test]
    fn while_do_while_break_continue() {
        let src = "int main() { int i = 0; while (i < 3) { i++; if (i == 1) continue; if (i == 2) break; } do { i--; } while (i > 0); return i; }";
        let tu = parse(src).expect("parse");
        let main = tu.function("main").unwrap();
        assert!(matches!(main.body[1].kind, StmtKind::While(..)));
        assert!(matches!(main.body[2].kind, StmtKind::DoWhile(..)));
    }

    #[test]
    fn ternary_and_logical_ops() {
        let tu =
            parse("int main() { int a = 1, b = 2; int c = a && b ? a | b : a ^ b; return c; }")
                .expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Decl(d) = &main.body[1].kind else {
            panic!()
        };
        assert!(matches!(
            d.vars[0].init.as_ref().unwrap().kind,
            ExprKind::Ternary(..)
        ));
    }

    #[test]
    fn unsigned_and_long_types() {
        let tu = parse("unsigned int a; unsigned long b; long c; long long d; unsigned e;")
            .expect("parse");
        let tys: Vec<_> = tu.global_decls().map(|d| d.vars[0].ty.clone()).collect();
        assert_eq!(
            tys,
            vec![
                CType::UInt,
                CType::ULong,
                CType::Long,
                CType::LongLong,
                CType::UInt
            ]
        );
    }

    #[test]
    fn function_prototype_is_declaration() {
        let tu = parse("double f(double, int *); int main() { return 0; }").expect("parse");
        let proto = tu.global_decls().next().expect("proto");
        let CType::Function { ret, params } = &proto.vars[0].ty else {
            panic!()
        };
        assert_eq!(**ret, CType::Double);
        assert_eq!(params.len(), 2);
        assert_eq!(params[1], CType::Int.ptr_to());
    }

    #[test]
    fn array_parameter_decays() {
        let tu = parse("void f(double a[], int n) { }").expect("parse");
        let f = tu.function("f").unwrap();
        assert_eq!(f.params[0].ty, CType::Double.ptr_to());
        assert_eq!(f.params[1].ty, CType::Int);
    }

    #[test]
    fn two_dimensional_array() {
        let tu = parse("double m[4][8];").expect("parse");
        let d = tu.global_decls().next().unwrap();
        assert_eq!(
            d.vars[0].ty,
            CType::Double.array_of(Some(8)).array_of(Some(4))
        );
        assert_eq!(d.vars[0].ty.mem_size(), 256);
    }

    #[test]
    fn const_array_length_expression() {
        let tu = parse("int a[2 * 8 + 1];").expect("parse");
        let d = tu.global_decls().next().unwrap();
        assert_eq!(d.vars[0].ty, CType::Int.array_of(Some(17)));
    }

    #[test]
    fn postfix_chain_member_call_index() {
        let tu = parse("int main() { int a[3]; a[0]++; --a[1]; return a[0]; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(e)) = &main.body[1].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::PostIncDec(_, true)));
        let StmtKind::Expr(Some(e2)) = &main.body[2].kind else {
            panic!()
        };
        assert!(matches!(e2.kind, ExprKind::Unary(UnaryOp::PreDec, _)));
    }

    #[test]
    fn adjacent_string_literals_concatenate() {
        let tu = parse(r#"int main() { printf("a" "b"); return 0; }"#).expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(e)) = &main.body[0].kind else {
            panic!()
        };
        let ExprKind::Call(_, args) = &e.kind else {
            panic!()
        };
        assert_eq!(args[0].kind, ExprKind::StrLit("ab".into()));
    }

    #[test]
    fn error_has_location() {
        let err = parse("int main() { return }").unwrap_err();
        assert_eq!(err.loc.line, 1);
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse("int x").is_err());
    }

    #[test]
    fn node_ids_are_unique() {
        use std::collections::HashSet;
        let tu = parse(EXAMPLE_4_1).expect("parse");
        let mut seen = HashSet::new();
        let mut check = |id: NodeId| assert!(seen.insert(id), "duplicate id {id}");
        for f in tu.functions() {
            check(f.id);
        }
        // Spot check: all statement ids in main are unique.
        for s in &tu.function("main").unwrap().body {
            check(s.id);
        }
    }

    #[test]
    fn comma_expression_in_for_step() {
        let tu =
            parse("int main() { int i, j; for (i = 0, j = 9; i < j; i++, j--) { } return 0; }")
                .expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::For(Some(ForInit::Expr(init)), _, Some(step), _) = &main.body[1].kind else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Comma(..)));
        assert!(matches!(step.kind, ExprKind::Comma(..)));
    }

    #[test]
    fn const_fold_handles_sizeof() {
        let tu = parse("int main() { int x; x = sizeof(double) * 3; return x; }").expect("parse");
        let main = tu.function("main").unwrap();
        let StmtKind::Expr(Some(e)) = &main.body[1].kind else {
            panic!()
        };
        let ExprKind::Assign(_, _, rhs) = &e.kind else {
            panic!()
        };
        assert_eq!(const_fold(rhs), Some(24));
    }

    #[test]
    fn switch_with_cases_and_default() {
        let src = r#"
int classify(int x) {
    int r = 0;
    switch (x) {
        case 0:
            r = 10;
            break;
        case 1:
        case 2:
            r = 20;
            break;
        default:
            r = 30;
    }
    return r;
}
int main() { return classify(1); }
"#;
        let tu = parse(src).expect("parse");
        let f = tu.function("classify").unwrap();
        let StmtKind::Switch(_, body) = &f.body[1].kind else {
            panic!("expected switch: {:?}", f.body[1].kind);
        };
        let cases = body
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::Case(_)))
            .count();
        let defaults = body
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::Default))
            .count();
        assert_eq!(cases, 3);
        assert_eq!(defaults, 1);
    }

    #[test]
    fn case_label_must_be_constant() {
        let err =
            parse("int main() { int x = 0; switch (x) { case x: break; } return 0; }").unwrap_err();
        assert!(err.message.contains("constant"), "{err}");
    }
}
