//! Hand-written lexer for the supported C subset.
//!
//! Handles identifiers/keywords, integer (decimal/hex/octal), float, char and
//! string literals, all C89 operators used by the subset, `//` and `/* */`
//! comments, and preprocessor lines (which are kept verbatim so `#include`s
//! survive the source-to-source round trip).

use crate::error::LexError;
use crate::span::{Loc, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Lexes a full source string into tokens (terminated by [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated literals/comments or characters
/// outside the supported subset.
///
/// ```
/// # fn main() -> Result<(), hsm_cir::error::LexError> {
/// use hsm_cir::lexer::lex;
/// use hsm_cir::token::TokenKind;
/// let tokens = lex("int x = 42;")?;
/// assert!(matches!(tokens[2].kind, TokenKind::Punct(_)));
/// assert!(matches!(tokens[3].kind, TokenKind::IntLit(42)));
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    chars: Vec<char>,
    pos: usize,
    loc: Loc,
    #[allow(dead_code)]
    source: &'src str,
}

impl<'src> Lexer<'src> {
    fn new(source: &'src str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            loc: Loc::start(),
            source,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.loc.line += 1;
            self.loc.col = 1;
        } else {
            self.loc.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let start = self.loc;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(start),
                });
                return Ok(out);
            };
            let kind = if c == '#' {
                self.lex_preproc()
            } else if c.is_ascii_alphabetic() || c == '_' {
                Ok(self.lex_ident())
            } else if c.is_ascii_digit() {
                self.lex_number()
            } else if c == '"' {
                self.lex_string()
            } else if c == '\'' {
                self.lex_char()
            } else {
                self.lex_punct()
            }?;
            out.push(Token {
                kind,
                span: Span::new(start, self.loc),
            });
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.loc;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_preproc(&mut self) -> Result<TokenKind, LexError> {
        self.bump(); // '#'
        let mut line = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            line.push(c);
            self.bump();
        }
        Ok(TokenKind::PreprocLine(line.trim().to_string()))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_str(&s) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(s),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, LexError> {
        let start = self.loc;
        let mut s = String::new();
        // Hex
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_int_suffix();
            let v = i64::from_str_radix(&s, 16)
                .map_err(|_| LexError::new(start, "hex literal out of range"))?;
            return Ok(TokenKind::IntLit(v));
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float {
                // trailing dot as in `1.`
                is_float = true;
                s.push(c);
                self.bump();
                break;
            } else {
                break;
            }
        }
        // Exponent
        if matches!(self.peek(), Some('e') | Some('E')) {
            let save_pos = self.pos;
            let save_loc = self.loc;
            let mut exp = String::from("e");
            self.bump();
            if matches!(self.peek(), Some('+') | Some('-')) {
                exp.push(self.bump().unwrap());
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        exp.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                s.push_str(&exp);
                is_float = true;
            } else {
                self.pos = save_pos;
                self.loc = save_loc;
            }
        }
        if is_float {
            if matches!(self.peek(), Some('f') | Some('F') | Some('l') | Some('L')) {
                self.bump();
            }
            let v: f64 = s
                .parse()
                .map_err(|_| LexError::new(start, "malformed float literal"))?;
            Ok(TokenKind::FloatLit(v))
        } else {
            self.skip_int_suffix();
            // Octal literals start with 0 but `0` itself is decimal zero.
            let v = if s.len() > 1 && s.starts_with('0') {
                i64::from_str_radix(&s[1..], 8)
                    .map_err(|_| LexError::new(start, "octal literal out of range"))?
            } else {
                s.parse()
                    .map_err(|_| LexError::new(start, "integer literal out of range"))?
            };
            Ok(TokenKind::IntLit(v))
        }
    }

    fn skip_int_suffix(&mut self) {
        while matches!(self.peek(), Some('u') | Some('U') | Some('l') | Some('L')) {
            self.bump();
        }
    }

    fn lex_escape(&mut self, start: Loc) -> Result<char, LexError> {
        // caller consumed the backslash
        let c = self
            .bump()
            .ok_or_else(|| LexError::new(start, "unterminated escape sequence"))?;
        Ok(match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            '\\' => '\\',
            '\'' => '\'',
            '"' => '"',
            other => other,
        })
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let start = self.loc;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::StrLit(s)),
                Some('\\') => s.push(self.lex_escape(start)?),
                Some('\n') | None => {
                    return Err(LexError::new(start, "unterminated string literal"))
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn lex_char(&mut self) -> Result<TokenKind, LexError> {
        let start = self.loc;
        self.bump(); // opening quote
        let c = match self.bump() {
            Some('\\') => self.lex_escape(start)?,
            Some('\'') | None => return Err(LexError::new(start, "empty character literal")),
            Some(c) => c,
        };
        match self.bump() {
            Some('\'') => Ok(TokenKind::CharLit(c)),
            _ => Err(LexError::new(start, "unterminated character literal")),
        }
    }

    fn lex_punct(&mut self) -> Result<TokenKind, LexError> {
        use Punct::*;
        let start = self.loc;
        let c = self.bump().expect("peeked before lex_punct");
        let two = self.peek();
        let three = |lexer: &Self| lexer.peek2();
        let p = match c {
            '(' => LParen,
            ')' => RParen,
            '{' => LBrace,
            '}' => RBrace,
            '[' => LBracket,
            ']' => RBracket,
            ';' => Semi,
            ',' => Comma,
            '?' => Question,
            ':' => Colon,
            '~' => Tilde,
            '.' => Dot,
            '+' => match two {
                Some('+') => {
                    self.bump();
                    PlusPlus
                }
                Some('=') => {
                    self.bump();
                    PlusEq
                }
                _ => Plus,
            },
            '-' => match two {
                Some('-') => {
                    self.bump();
                    MinusMinus
                }
                Some('=') => {
                    self.bump();
                    MinusEq
                }
                Some('>') => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            '*' => match two {
                Some('=') => {
                    self.bump();
                    StarEq
                }
                _ => Star,
            },
            '/' => match two {
                Some('=') => {
                    self.bump();
                    SlashEq
                }
                _ => Slash,
            },
            '%' => match two {
                Some('=') => {
                    self.bump();
                    PercentEq
                }
                _ => Percent,
            },
            '&' => match two {
                Some('&') => {
                    self.bump();
                    AmpAmp
                }
                Some('=') => {
                    self.bump();
                    AmpEq
                }
                _ => Amp,
            },
            '|' => match two {
                Some('|') => {
                    self.bump();
                    PipePipe
                }
                Some('=') => {
                    self.bump();
                    PipeEq
                }
                _ => Pipe,
            },
            '^' => match two {
                Some('=') => {
                    self.bump();
                    CaretEq
                }
                _ => Caret,
            },
            '!' => match two {
                Some('=') => {
                    self.bump();
                    BangEq
                }
                _ => Bang,
            },
            '=' => match two {
                Some('=') => {
                    self.bump();
                    EqEq
                }
                _ => Eq,
            },
            '<' => match two {
                Some('<') if three(self) == Some('=') => {
                    self.bump();
                    self.bump();
                    ShlEq
                }
                Some('<') => {
                    self.bump();
                    Shl
                }
                Some('=') => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            '>' => match two {
                Some('>') if three(self) == Some('=') => {
                    self.bump();
                    self.bump();
                    ShrEq
                }
                Some('>') => {
                    self.bump();
                    Shr
                }
                Some('=') => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(LexError::new(
                    start,
                    format!("unexpected character {other:?}"),
                ))
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Punct as P;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex")
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| !matches!(k, TokenKind::Eof))
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(P::Eq),
                TokenKind::IntLit(42),
                TokenKind::Punct(P::Semi),
            ]
        );
    }

    #[test]
    fn lexes_pthread_identifiers() {
        let k = kinds("pthread_create(&threads[local], NULL, tf, (void *) local);");
        assert_eq!(k[0], TokenKind::Ident("pthread_create".into()));
        assert!(k.contains(&TokenKind::Ident("NULL".into())));
        assert!(k.contains(&TokenKind::Keyword(Keyword::Void)));
    }

    #[test]
    fn lexes_number_forms() {
        assert_eq!(kinds("0x1F"), vec![TokenKind::IntLit(31)]);
        assert_eq!(kinds("010"), vec![TokenKind::IntLit(8)]);
        assert_eq!(kinds("0"), vec![TokenKind::IntLit(0)]);
        assert_eq!(kinds("3.5"), vec![TokenKind::FloatLit(3.5)]);
        assert_eq!(kinds("4.0"), vec![TokenKind::FloatLit(4.0)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::FloatLit(1000.0)]);
        assert_eq!(kinds("2.5e-1"), vec![TokenKind::FloatLit(0.25)]);
        assert_eq!(kinds("100UL"), vec![TokenKind::IntLit(100)]);
        assert_eq!(kinds("1.0f"), vec![TokenKind::FloatLit(1.0)]);
    }

    #[test]
    fn dot_after_integer_without_digits_is_float() {
        assert_eq!(kinds("1."), vec![TokenKind::FloatLit(1.0)]);
    }

    #[test]
    fn lexes_string_with_escapes() {
        assert_eq!(
            kinds(r#""Sum Array: %d\n""#),
            vec![TokenKind::StrLit("Sum Array: %d\n".into())]
        );
    }

    #[test]
    fn lexes_char_literals() {
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit('a')]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::CharLit('\n')]);
        assert_eq!(kinds(r"'\0'"), vec![TokenKind::CharLit('\0')]);
    }

    #[test]
    fn lexes_compound_operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >>= c += d->e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(P::ShlEq),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(P::ShrEq),
                TokenKind::Ident("c".into()),
                TokenKind::Punct(P::PlusEq),
                TokenKind::Ident("d".into()),
                TokenKind::Punct(P::Arrow),
                TokenKind::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("a // comment\n /* multi\nline */ b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()),]
        );
    }

    #[test]
    fn keeps_preprocessor_lines() {
        assert_eq!(
            kinds("#include <stdio.h>\nint x;"),
            vec![
                TokenKind::PreprocLine("include <stdio.h>".into()),
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(P::Semi),
            ]
        );
    }

    #[test]
    fn error_on_unterminated_string() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated string"));
    }

    #[test]
    fn error_on_unterminated_block_comment() {
        let err = lex("/* no end").unwrap_err();
        assert!(err.message.contains("unterminated block comment"));
    }

    #[test]
    fn error_on_stray_character() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("int\nx;").expect("lex");
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[1].span.start.line, 2);
    }

    #[test]
    fn minus_gt_vs_minus_minus() {
        assert_eq!(
            kinds("a--->b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(P::MinusMinus),
                TokenKind::Punct(P::Arrow),
                TokenKind::Ident("b".into()),
            ]
        );
    }
}
