//! C source emission from the CIR.
//!
//! The printer closes the source-to-source loop: after the Stage 5 rewrites,
//! [`print_unit`] renders a compilable C file in the style of the paper's
//! Example Code 4.2.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole translation unit as C source.
///
/// ```
/// # fn main() -> Result<(), hsm_cir::error::ParseError> {
/// use hsm_cir::{parser::parse, printer::print_unit};
/// let tu = parse("int x = 1;\nint main() { return x; }")?;
/// let src = print_unit(&tu);
/// assert!(src.contains("int x = 1;"));
/// # Ok(())
/// # }
/// ```
pub fn print_unit(tu: &TranslationUnit) -> String {
    let mut p = Printer::new();
    for line in &tu.preproc {
        let _ = writeln!(p.out, "#{line}");
    }
    if !tu.preproc.is_empty() {
        p.out.push('\n');
    }
    for item in &tu.items {
        match item {
            Item::Decl(d) => {
                p.print_declaration(d);
                p.out.push('\n');
            }
            Item::Func(f) => {
                p.print_function(f);
                p.out.push('\n');
            }
        }
    }
    p.out
}

/// Renders a single expression as C source (useful in tests/diagnostics).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e, 0);
    p.out
}

/// Renders a single statement as C source at indent level zero.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn print_function(&mut self, f: &FunctionDef) {
        let params = if f.params.is_empty() {
            String::new()
        } else {
            f.params
                .iter()
                .map(|p| p.ty.display_decl(&p.name))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let header = f.ret.display_decl(&format!("{}({params})", f.name));
        let _ = writeln!(self.out, "{header}");
        self.out.push_str("{\n");
        self.indent += 1;
        for s in &f.body {
            self.stmt(s);
        }
        self.indent -= 1;
        self.out.push_str("}\n");
    }

    fn print_declaration(&mut self, d: &Declaration) {
        self.pad();
        self.declaration_inline(d);
        self.out.push('\n');
    }

    fn declaration_inline(&mut self, d: &Declaration) {
        match d.storage {
            Storage::Static => self.out.push_str("static "),
            Storage::Extern => self.out.push_str("extern "),
            Storage::Typedef => self.out.push_str("typedef "),
            Storage::None => {}
        }
        for (i, v) in d.vars.iter().enumerate() {
            if i == 0 {
                self.out.push_str(&v.ty.display_decl(&v.name));
            } else {
                // Secondary declarators repeat only the declarator part;
                // for simplicity, emit each with its full type on the same
                // statement separated by `, ` only when the base matches —
                // otherwise split is handled by the caller producing
                // separate declarations. We emit the declarator directly.
                self.out.push_str(", ");
                let full = v.ty.display_decl(&v.name);
                // Strip the repeated base type words for the common case.
                let first_base = d.vars[0].ty.display_decl("");
                let stripped = full
                    .strip_prefix(first_base.trim())
                    .map(|s| s.trim_start().to_string())
                    .unwrap_or(full);
                self.out.push_str(&stripped);
            }
            if let Some(init) = &v.init {
                self.out.push_str(" = ");
                self.expr(init, 2);
            }
        }
        self.out.push(';');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(None) => {
                self.pad();
                self.out.push_str(";\n");
            }
            StmtKind::Expr(Some(e)) => {
                self.pad();
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            StmtKind::Decl(d) => {
                self.print_declaration(d);
            }
            StmtKind::Block(stmts) => {
                self.pad();
                self.out.push_str("{\n");
                self.indent += 1;
                for st in stmts {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::If(cond, then, els) => {
                self.pad();
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested(then);
                if let Some(e) = els {
                    self.pad();
                    self.out.push_str("else\n");
                    self.nested(e);
                }
            }
            StmtKind::While(cond, body) => {
                self.pad();
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested(body);
            }
            StmtKind::DoWhile(body, cond) => {
                self.pad();
                self.out.push_str("do\n");
                self.nested(body);
                self.pad();
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(");\n");
            }
            StmtKind::For(init, cond, step, body) => {
                self.pad();
                self.out.push_str("for (");
                match init {
                    Some(ForInit::Decl(d)) => {
                        self.declaration_inline(d);
                        self.out.push(' ');
                    }
                    Some(ForInit::Expr(e)) => {
                        self.expr(e, 0);
                        self.out.push_str("; ");
                    }
                    None => self.out.push_str("; "),
                }
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.out.push_str(")\n");
                self.nested(body);
            }
            StmtKind::Switch(scrutinee, body) => {
                self.pad();
                self.out.push_str("switch (");
                self.expr(scrutinee, 0);
                self.out.push_str(")\n");
                self.pad();
                self.out.push_str("{\n");
                self.indent += 1;
                for st in body {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::Case(v) => {
                // Labels print one level out for readability.
                let outdent = self.indent.saturating_sub(1);
                for _ in 0..outdent {
                    self.out.push_str("    ");
                }
                let _ = writeln!(self.out, "case {v}:");
            }
            StmtKind::Default => {
                let outdent = self.indent.saturating_sub(1);
                for _ in 0..outdent {
                    self.out.push_str("    ");
                }
                self.out.push_str("default:\n");
            }
            StmtKind::Return(e) => {
                self.pad();
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push_str(";\n");
            }
            StmtKind::Break => {
                self.pad();
                self.out.push_str("break;\n");
            }
            StmtKind::Continue => {
                self.pad();
                self.out.push_str("continue;\n");
            }
        }
    }

    fn nested(&mut self, s: &Stmt) {
        if matches!(s.kind, StmtKind::Block(_)) {
            self.stmt(s);
        } else {
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    /// Prints an expression. `parent_prec` is the precedence of the
    /// enclosing operator; parentheses are emitted when this expression
    /// binds looser.
    fn expr(&mut self, e: &Expr, parent_prec: u8) {
        let prec = expr_prec(e);
        let need_parens = prec < parent_prec;
        if need_parens {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::FloatLit(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::CharLit(c) => {
                let escaped = match c {
                    '\n' => "\\n".to_string(),
                    '\t' => "\\t".to_string(),
                    '\r' => "\\r".to_string(),
                    '\0' => "\\0".to_string(),
                    '\'' => "\\'".to_string(),
                    '\\' => "\\\\".to_string(),
                    other => other.to_string(),
                };
                let _ = write!(self.out, "'{escaped}'");
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '\0' => self.out.push_str("\\0"),
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        other => self.out.push(other),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Unary(op, inner) => {
                self.out.push_str(op.as_str());
                // `- -x` needs a space to avoid lexing as `--x`; likewise
                // `& &x` would lex as `&&x`.
                let clash = match op {
                    UnaryOp::Neg | UnaryOp::Plus => matches!(
                        inner.kind,
                        ExprKind::Unary(
                            UnaryOp::Neg | UnaryOp::Plus | UnaryOp::PreDec | UnaryOp::PreInc,
                            _
                        )
                    ),
                    UnaryOp::Addr => {
                        matches!(inner.kind, ExprKind::Unary(UnaryOp::Addr, _))
                    }
                    _ => false,
                };
                if clash {
                    self.out.push(' ');
                }
                self.expr(inner, 14);
            }
            ExprKind::PostIncDec(inner, inc) => {
                self.expr(inner, 14);
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            ExprKind::Binary(op, l, r) => {
                let p = binop_prec(*op);
                self.expr(l, p);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr(r, p + 1);
            }
            ExprKind::Assign(op, l, r) => {
                self.expr(l, 3);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr(r, 2);
            }
            ExprKind::Ternary(c, t, f) => {
                self.expr(c, 4);
                self.out.push_str(" ? ");
                self.expr(t, 0);
                self.out.push_str(" : ");
                self.expr(f, 2);
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee, 14);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 2);
                }
                self.out.push(')');
            }
            ExprKind::Index(base, idx) => {
                self.expr(base, 14);
                self.out.push('[');
                self.expr(idx, 0);
                self.out.push(']');
            }
            ExprKind::Member(base, field, arrow) => {
                self.expr(base, 14);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            ExprKind::Cast(ty, inner) => {
                let _ = write!(self.out, "({ty})");
                self.expr(inner, 14);
            }
            ExprKind::SizeofType(ty) => {
                let _ = write!(self.out, "sizeof({ty})");
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof ");
                self.expr(inner, 14);
            }
            ExprKind::Comma(l, r) => {
                self.expr(l, 1);
                self.out.push_str(", ");
                self.expr(r, 2);
            }
            ExprKind::InitList(items) => {
                self.out.push('{');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(item, 2);
                }
                self.out.push('}');
            }
        }
        if need_parens {
            self.out.push(')');
        }
    }
}

fn binop_prec(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        LogOr => 4,
        LogAnd => 5,
        BitOr => 6,
        BitXor => 7,
        BitAnd => 8,
        Eq | Ne => 9,
        Lt | Gt | Le | Ge => 10,
        Shl | Shr => 11,
        Add | Sub => 12,
        Mul | Div | Rem => 13,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Comma(..) => 1,
        ExprKind::Assign(..) => 2,
        ExprKind::Ternary(..) => 3,
        ExprKind::Binary(op, ..) => binop_prec(*op),
        ExprKind::Cast(..) | ExprKind::Unary(..) | ExprKind::SizeofExpr(..) => 14,
        _ => 15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) -> String {
        let tu = parse(src).expect("parse input");
        print_unit(&tu)
    }

    fn reparses(src: &str) {
        let printed = round_trip(src);
        let tu1 = parse(src).expect("parse original");
        let tu2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Structural equality modulo node ids: compare printed forms.
        assert_eq!(printed, print_unit(&tu2), "print not a fixpoint");
        assert_eq!(tu1.functions().count(), tu2.functions().count());
    }

    #[test]
    fn prints_simple_function() {
        let out = round_trip("int main() { return 0; }");
        assert!(out.contains("int main()"));
        assert!(out.contains("    return 0;"));
    }

    #[test]
    fn preserves_precedence_with_parens() {
        let out = round_trip("int main() { int x; x = (1 + 2) * 3; return x; }");
        assert!(out.contains("(1 + 2) * 3"), "got: {out}");
    }

    #[test]
    fn no_spurious_parens_for_natural_precedence() {
        let out = round_trip("int main() { int x; x = 1 + 2 * 3; return x; }");
        assert!(out.contains("1 + 2 * 3"), "got: {out}");
    }

    #[test]
    fn prints_pointer_declarations() {
        let out = round_trip("int *ptr; int sum[3] = {0};");
        assert!(out.contains("int *ptr;"));
        assert!(out.contains("int sum[3] = {0};"));
    }

    #[test]
    fn prints_string_escapes() {
        let out = round_trip(r#"int main() { printf("Sum: %d\n", 1); return 0; }"#);
        assert!(out.contains(r#""Sum: %d\n""#), "got: {out}");
    }

    #[test]
    fn prints_casts() {
        let out = round_trip("void *tf(void *tid) { int t = (int)tid; return tid; }");
        assert!(out.contains("(int)tid"), "got: {out}");
    }

    #[test]
    fn round_trips_example_constructs() {
        reparses(
            r#"
#include <stdio.h>
int global;
int *ptr;
int sum[3] = {0};
void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    return tid;
}
int main() {
    int local = 0;
    for (local = 0; local < 3; local++) {
        tf((void *)local);
    }
    return 0;
}
"#,
        );
    }

    #[test]
    fn round_trips_control_flow() {
        reparses("int main() { int i = 0; while (i < 5) { if (i % 2 == 0) i += 2; else i++; } do i--; while (i > 0); return i; }");
    }

    #[test]
    fn round_trips_unary_chains() {
        reparses(
            "int main() { int a = 1; int b = - -a; int c = !!a; int *p = &a; return *p + b + c; }",
        );
    }

    #[test]
    fn round_trips_float_literals() {
        let out = round_trip("double pi() { return 4.0 / (1.0 + 0.5); }");
        assert!(out.contains("4.0"), "got: {out}");
        assert!(out.contains("0.5"), "got: {out}");
    }

    #[test]
    fn prints_multiple_declarators() {
        let out = round_trip("int main() { int a = 1, b = 2; return a + b; }");
        assert!(out.contains("int a = 1, b = 2;"), "got: {out}");
    }

    #[test]
    fn comma_argument_is_parenthesized() {
        // A comma expression as a call argument must keep its parens.
        let tu =
            parse("int f(int); int main() { int a = 0, b = 1; return f((a, b)); }").expect("parse");
        let out = print_unit(&tu);
        assert!(out.contains("f((a, b))"), "got: {out}");
        parse(&out).expect("reparse");
    }

    #[test]
    fn assignment_in_condition_keeps_meaning() {
        reparses("int main() { int a = 0; if (a = 3) return a; return 0; }");
    }

    #[test]
    fn switch_round_trips() {
        reparses(
            "int main() { int x = 2; int r; switch (x) { case 1: r = 1; break; case 2: r = 2; default: r = 9; } return r; }",
        );
        let out = round_trip(
            "int main() { int x = 2; switch (x) { case 1: return 1; default: return 9; } }",
        );
        assert!(out.contains("switch (x)"), "{out}");
        assert!(out.contains("case 1:"), "{out}");
        assert!(out.contains("default:"), "{out}");
    }
}
