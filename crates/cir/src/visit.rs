//! Lightweight AST walkers used by the analysis stages.
//!
//! These are closures-based pre-order traversals rather than a full visitor
//! trait: every consumer in the pipeline only needs "give me every
//! expression / statement under this node".

use crate::ast::*;

/// Calls `f` on `e` and every sub-expression, pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary(_, inner)
        | ExprKind::PostIncDec(inner, _)
        | ExprKind::Cast(_, inner)
        | ExprKind::SizeofExpr(inner) => walk_expr(inner, f),
        ExprKind::Binary(_, l, r) | ExprKind::Assign(_, l, r) | ExprKind::Comma(l, r) => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        ExprKind::Ternary(c, t, e2) => {
            walk_expr(c, f);
            walk_expr(t, f);
            walk_expr(e2, f);
        }
        ExprKind::Call(callee, args) => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Index(b, i) => {
            walk_expr(b, f);
            walk_expr(i, f);
        }
        ExprKind::Member(b, _, _) => walk_expr(b, f),
        ExprKind::InitList(items) => {
            for it in items {
                walk_expr(it, f);
            }
        }
    }
}

/// Calls `f` on `s` and every nested statement, pre-order.
pub fn walk_stmt(s: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::Block(stmts) => {
            for st in stmts {
                walk_stmt(st, f);
            }
        }
        StmtKind::If(_, then, els) => {
            walk_stmt(then, f);
            if let Some(e) = els {
                walk_stmt(e, f);
            }
        }
        StmtKind::While(_, body) | StmtKind::DoWhile(body, _) => walk_stmt(body, f),
        StmtKind::For(_, _, _, body) => walk_stmt(body, f),
        StmtKind::Switch(_, body) => {
            for st in body {
                walk_stmt(st, f);
            }
        }
        StmtKind::Expr(_)
        | StmtKind::Decl(_)
        | StmtKind::Return(_)
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Case(_)
        | StmtKind::Default => {}
    }
}

/// Calls `f` on every expression appearing anywhere inside `s` (conditions,
/// steps, initializers, nested statements).
pub fn walk_exprs_in_stmt(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    walk_stmt(s, &mut |st| exprs_of_stmt_shallow(st, f));
}

/// Calls `f` on the expressions directly owned by `s` (not nested statements).
fn exprs_of_stmt_shallow(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match &s.kind {
        StmtKind::Expr(Some(e)) => walk_expr(e, f),
        StmtKind::Expr(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Block(_) => {}
        StmtKind::Decl(d) => {
            for v in &d.vars {
                if let Some(init) = &v.init {
                    walk_expr(init, f);
                }
            }
        }
        StmtKind::If(c, _, _) => walk_expr(c, f),
        StmtKind::While(c, _) => walk_expr(c, f),
        StmtKind::DoWhile(_, c) => walk_expr(c, f),
        StmtKind::For(init, cond, step, _) => {
            match init {
                Some(ForInit::Decl(d)) => {
                    for v in &d.vars {
                        if let Some(i) = &v.init {
                            walk_expr(i, f);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => walk_expr(e, f),
                None => {}
            }
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(st) = step {
                walk_expr(st, f);
            }
        }
        StmtKind::Switch(scrutinee, _) => walk_expr(scrutinee, f),
        StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::Return(None) | StmtKind::Case(_) | StmtKind::Default => {}
    }
}

/// Calls `f` on every expression in a function definition.
pub fn walk_exprs_in_function(func: &FunctionDef, f: &mut impl FnMut(&Expr)) {
    for s in &func.body {
        walk_exprs_in_stmt(s, f);
    }
}

/// Calls `f` on every expression in the unit (global initializers included).
pub fn walk_exprs_in_unit(tu: &TranslationUnit, f: &mut impl FnMut(&Expr)) {
    for item in &tu.items {
        match item {
            Item::Decl(d) => {
                for v in &d.vars {
                    if let Some(init) = &v.init {
                        walk_expr(init, f);
                    }
                }
            }
            Item::Func(func) => walk_exprs_in_function(func, f),
        }
    }
}

/// Calls `f` on every declaration in the unit (global and local).
pub fn walk_decls_in_unit(tu: &TranslationUnit, f: &mut impl FnMut(&Declaration, Option<&str>)) {
    for item in &tu.items {
        match item {
            Item::Decl(d) => f(d, None),
            Item::Func(func) => {
                for s in &func.body {
                    walk_stmt(s, &mut |st| match &st.kind {
                        StmtKind::Decl(d) => f(d, Some(&func.name)),
                        StmtKind::For(Some(ForInit::Decl(d)), _, _, _) => f(d, Some(&func.name)),
                        _ => {}
                    });
                }
            }
        }
    }
}

/// Collects every direct call to `target` in the unit, together with the
/// name of the function it appears in and whether it is inside a loop.
pub fn find_calls<'a>(tu: &'a TranslationUnit, target: &str) -> Vec<CallSite<'a>> {
    let mut out = Vec::new();
    for func in tu.functions() {
        for s in &func.body {
            collect_calls(s, target, &func.name, false, &mut out);
        }
    }
    out
}

/// A located direct call found by [`find_calls`].
#[derive(Debug, Clone)]
pub struct CallSite<'a> {
    /// The call expression itself.
    pub expr: &'a Expr,
    /// Name of the enclosing function definition.
    pub in_function: String,
    /// Whether the call is lexically inside a loop.
    pub in_loop: bool,
}

fn collect_calls<'a>(
    s: &'a Stmt,
    target: &str,
    in_function: &str,
    in_loop: bool,
    out: &mut Vec<CallSite<'a>>,
) {
    let visit_expr = |e: &'a Expr, in_loop: bool, out: &mut Vec<CallSite<'a>>| {
        walk_expr(e, &mut |sub: &'a Expr| {
            if sub.call_target() == Some(target) {
                out.push(CallSite {
                    expr: sub,
                    in_function: in_function.to_string(),
                    in_loop,
                });
            }
        });
    };
    match &s.kind {
        StmtKind::Expr(Some(e)) => visit_expr(e, in_loop, out),
        StmtKind::Decl(d) => {
            for v in &d.vars {
                if let Some(init) = &v.init {
                    visit_expr(init, in_loop, out);
                }
            }
        }
        StmtKind::Block(stmts) => {
            for st in stmts {
                collect_calls(st, target, in_function, in_loop, out);
            }
        }
        StmtKind::If(c, then, els) => {
            visit_expr(c, in_loop, out);
            collect_calls(then, target, in_function, in_loop, out);
            if let Some(e) = els {
                collect_calls(e, target, in_function, in_loop, out);
            }
        }
        StmtKind::While(c, body) => {
            visit_expr(c, true, out);
            collect_calls(body, target, in_function, true, out);
        }
        StmtKind::DoWhile(body, c) => {
            visit_expr(c, true, out);
            collect_calls(body, target, in_function, true, out);
        }
        StmtKind::For(init, cond, step, body) => {
            match init {
                Some(ForInit::Expr(e)) => visit_expr(e, in_loop, out),
                Some(ForInit::Decl(d)) => {
                    for v in &d.vars {
                        if let Some(i) = &v.init {
                            visit_expr(i, in_loop, out);
                        }
                    }
                }
                None => {}
            }
            if let Some(c) = cond {
                visit_expr(c, true, out);
            }
            if let Some(st) = step {
                visit_expr(st, true, out);
            }
            collect_calls(body, target, in_function, true, out);
        }
        StmtKind::Return(Some(e)) => visit_expr(e, in_loop, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn walk_expr_visits_all_nodes() {
        let tu = parse("int main() { int x; x = 1 + 2 * 3; return x; }").unwrap();
        let main = tu.function("main").unwrap();
        let mut count = 0;
        walk_exprs_in_function(main, &mut |_| count += 1);
        // x=..(assign), x(ident), +(bin), 1, *(bin), 2, 3, x(return) = 8
        assert_eq!(count, 8);
    }

    #[test]
    fn find_calls_flags_loops() {
        let src = r#"
void tf(int x) { }
int main() {
    int i;
    tf(0);
    for (i = 0; i < 3; i++) { tf(i); }
    while (i > 0) { i--; tf(i); }
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let calls = find_calls(&tu, "tf");
        assert_eq!(calls.len(), 3);
        assert!(!calls[0].in_loop);
        assert!(calls[1].in_loop);
        assert!(calls[2].in_loop);
        assert!(calls.iter().all(|c| c.in_function == "main"));
    }

    #[test]
    fn walk_decls_reports_owner() {
        let src = "int g; int main() { int l; for (int i = 0; i < 2; i++) { int m; } return 0; }";
        let tu = parse(src).unwrap();
        let mut globals = 0;
        let mut locals = 0;
        walk_decls_in_unit(&tu, &mut |_, owner| match owner {
            None => globals += 1,
            Some("main") => locals += 1,
            Some(other) => panic!("unexpected owner {other}"),
        });
        assert_eq!(globals, 1);
        assert_eq!(locals, 3); // l, i (for-init), m
    }

    #[test]
    fn walk_exprs_in_stmt_covers_conditions_and_steps() {
        let tu =
            parse("int main() { int i; for (i = 0; i < 9; i++) { i += 1; } return 0; }").unwrap();
        let main = tu.function("main").unwrap();
        let mut idents = 0;
        walk_exprs_in_stmt(&main.body[1], &mut |e| {
            if e.as_ident().is_some() {
                idents += 1;
            }
        });
        // i (init), i (cond), i (step), i (body) = 4 identifier mentions
        assert_eq!(idents, 4);
    }

    #[test]
    fn calls_in_condition_of_while_are_in_loop() {
        let tu = parse("int check(); int main() { while (check()) { } return 0; }").unwrap();
        let calls = find_calls(&tu, "check");
        assert_eq!(calls.len(), 1);
        assert!(calls[0].in_loop);
    }
}
