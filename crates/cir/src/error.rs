//! Error types for lexing and parsing.

use crate::span::Loc;
use std::error::Error;
use std::fmt;

/// An error produced while lexing C source text.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Where the error occurred.
    pub loc: Loc,
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
}

impl LexError {
    /// Creates a lex error at `loc`.
    pub fn new(loc: Loc, message: impl Into<String>) -> Self {
        LexError {
            loc,
            message: message.into(),
        }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.loc, self.message)
    }
}

impl Error for LexError {}

/// An error produced while parsing a token stream into an AST.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where the error occurred.
    pub loc: Loc,
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `loc`.
    pub fn new(loc: Loc, message: impl Into<String>) -> Self {
        ParseError {
            loc,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            loc: e.loc,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = LexError::new(Loc::new(2, 7), "unterminated string literal");
        assert_eq!(
            e.to_string(),
            "lex error at 2:7: unterminated string literal"
        );
    }

    #[test]
    fn lex_error_converts_to_parse_error() {
        let e: ParseError = LexError::new(Loc::new(1, 1), "bad").into();
        assert_eq!(e.loc, Loc::new(1, 1));
        assert_eq!(e.message, "bad");
    }
}
