//! # hsm-cir — C intermediate representation
//!
//! The frontend of the HSM translation framework: a from-scratch C-subset
//! lexer, parser, typed AST ("CIR"), symbol tables, AST walkers, and a C
//! source printer. It plays the role that the CETUS compiler infrastructure
//! plays in the paper *Enabling Multi-threaded Applications on Hybrid Shared
//! Memory Manycore Architectures* (Rawat, DATE 2015): every analysis stage
//! (crate `hsm-analysis`), the data partitioner (`hsm-partition`) and the
//! pthread→RCCE translator (`hsm-translate`) operate on the types defined
//! here.
//!
//! ## Example
//!
//! Parse a pthread program, inspect its symbols, and print it back:
//!
//! ```
//! # fn main() -> Result<(), hsm_cir::error::ParseError> {
//! use hsm_cir::{parser::parse, printer::print_unit, symbols::SymbolTable};
//!
//! let tu = parse(r#"
//!     int sum[3] = {0};
//!     void *tf(void *tid) { sum[(int)tid] += 1; return tid; }
//!     int main() { return 0; }
//! "#)?;
//! let symbols = SymbolTable::build(&tu);
//! assert_eq!(symbols.global_variables().len(), 1);
//! let printed = print_unit(&tu);
//! assert!(printed.contains("int sum[3] = {0};"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod symbols;
pub mod token;
pub mod types;
pub mod visit;

pub use ast::{Expr, ExprKind, FunctionDef, Item, NodeId, Stmt, StmtKind, TranslationUnit};
pub use error::{LexError, ParseError};
pub use parser::parse;
pub use printer::print_unit;
pub use symbols::{Scope, Symbol, SymbolTable};
pub use types::CType;
