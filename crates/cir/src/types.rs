//! The C type model used throughout analysis, partitioning and translation.
//!
//! Sizes follow the 32-bit IA-32 ABI of the SCC's P54C cores (pointers and
//! `long` are 4 bytes), matching the "mem size" combination of the Size and
//! Type columns in Table 4.1 of the paper.

use std::fmt;

/// A type in the supported C subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void` — only valid behind a pointer or as a return type.
    Void,
    /// `char` (1 byte).
    Char,
    /// `short` (2 bytes).
    Short,
    /// `int` (4 bytes).
    Int,
    /// `long` (4 bytes on IA-32).
    Long,
    /// `long long` (8 bytes).
    LongLong,
    /// `unsigned int` (4 bytes).
    UInt,
    /// `unsigned long` (4 bytes on IA-32).
    ULong,
    /// `float` (4 bytes).
    Float,
    /// `double` (8 bytes).
    Double,
    /// A named (typedef'd or library) type such as `pthread_t` or `size_t`.
    Named(String),
    /// A pointer to another type.
    Pointer(Box<CType>),
    /// An array with an optional compile-time length.
    Array(Box<CType>, Option<usize>),
    /// A function type (used for function symbols, not first-class values).
    Function {
        /// Return type.
        ret: Box<CType>,
        /// Parameter types.
        params: Vec<CType>,
    },
}

impl CType {
    /// Convenience constructor for a pointer to `self`.
    pub fn ptr_to(self) -> CType {
        CType::Pointer(Box::new(self))
    }

    /// Convenience constructor for an array of `self`.
    pub fn array_of(self, len: Option<usize>) -> CType {
        CType::Array(Box::new(self), len)
    }

    /// Whether this is any pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Pointer(_))
    }

    /// Whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, CType::Array(..))
    }

    /// Whether the type is a floating-point scalar.
    pub fn is_float(&self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }

    /// Whether the type is an integer scalar (including `char`).
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            CType::Char
                | CType::Short
                | CType::Int
                | CType::Long
                | CType::LongLong
                | CType::UInt
                | CType::ULong
        )
    }

    /// The element type of an array or the pointee of a pointer, if any.
    pub fn element(&self) -> Option<&CType> {
        match self {
            CType::Pointer(t) | CType::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The declared element count (1 for scalars, the length for arrays).
    ///
    /// This is the "Size" column of Table 4.1 in the paper: `sum[3]` has
    /// size 3, `int x` has size 1, `int *p` has size 1.
    pub fn count(&self) -> usize {
        match self {
            CType::Array(inner, len) => len.unwrap_or(1) * inner.count(),
            _ => 1,
        }
    }

    /// Size in bytes of one element (scalar size, pointee ignored).
    ///
    /// Named types default to 4 bytes (the size of `pthread_t` and other
    /// handle types on IA-32) unless they are well-known larger library
    /// types.
    pub fn scalar_size(&self) -> usize {
        match self {
            CType::Void => 0,
            CType::Char => 1,
            CType::Short => 2,
            CType::Int | CType::UInt | CType::Long | CType::ULong | CType::Float => 4,
            CType::LongLong | CType::Double => 8,
            CType::Pointer(_) => 4,
            CType::Array(inner, _) => inner.scalar_size(),
            CType::Named(name) => match name.as_str() {
                "pthread_mutex_t" => 24,
                "pthread_attr_t" => 36,
                _ => 4,
            },
            CType::Function { .. } => 0,
        }
    }

    /// Total memory footprint in bytes (`count * scalar_size`).
    ///
    /// This is the `mem_size` used by the paper's Algorithm 3 partitioner.
    ///
    /// ```
    /// use hsm_cir::types::CType;
    /// let sum = CType::Int.array_of(Some(3));
    /// assert_eq!(sum.mem_size(), 12);
    /// assert_eq!(CType::Double.ptr_to().mem_size(), 4);
    /// ```
    pub fn mem_size(&self) -> usize {
        self.count() * self.scalar_size()
    }

    /// Strips one level of array to yield the pointer type it decays to in
    /// expression context, or returns a clone for non-arrays.
    pub fn decay(&self) -> CType {
        match self {
            CType::Array(inner, _) => CType::Pointer(inner.clone()),
            other => other.clone(),
        }
    }

    /// Whether the type names a pthread library type that the translator
    /// must remove (Algorithm 7).
    pub fn is_pthread_type(&self) -> bool {
        match self {
            CType::Named(n) => n.starts_with("pthread_"),
            CType::Pointer(t) | CType::Array(t, _) => t.is_pthread_type(),
            _ => false,
        }
    }

    fn base_name(&self) -> String {
        match self {
            CType::Void => "void".into(),
            CType::Char => "char".into(),
            CType::Short => "short".into(),
            CType::Int => "int".into(),
            CType::Long => "long".into(),
            CType::LongLong => "long long".into(),
            CType::UInt => "unsigned int".into(),
            CType::ULong => "unsigned long".into(),
            CType::Float => "float".into(),
            CType::Double => "double".into(),
            CType::Named(n) => n.clone(),
            CType::Pointer(t) | CType::Array(t, _) => t.base_name(),
            CType::Function { ret, .. } => ret.base_name(),
        }
    }

    /// Renders a C declaration of `name` with this type, e.g.
    /// `int *sum[3]` for `name = "sum"`.
    ///
    /// ```
    /// use hsm_cir::types::CType;
    /// let t = CType::Int.ptr_to();
    /// assert_eq!(t.display_decl("ptr"), "int *ptr");
    /// let a = CType::Int.array_of(Some(3));
    /// assert_eq!(a.display_decl("sum"), "int sum[3]");
    /// ```
    pub fn display_decl(&self, name: &str) -> String {
        let base = self.base_name();
        let decl = self.declarator(name);
        if decl.is_empty() {
            base
        } else {
            format!("{base} {decl}")
        }
    }

    fn declarator(&self, name: &str) -> String {
        match self {
            CType::Pointer(inner) => {
                let starred = format!("*{name}");
                match **inner {
                    CType::Array(..) | CType::Function { .. } => {
                        inner.declarator(&format!("({starred})"))
                    }
                    _ => inner.declarator(&starred),
                }
            }
            CType::Array(inner, len) => {
                let suffixed = match len {
                    Some(n) => format!("{name}[{n}]"),
                    None => format!("{name}[]"),
                };
                inner.declarator(&suffixed)
            }
            CType::Function { ret, params } => {
                let ps: Vec<String> = if params.is_empty() {
                    vec![]
                } else {
                    params.iter().map(|p| p.display_decl("")).collect()
                };
                ret.declarator(&format!("{name}({})", ps.join(", ")))
            }
            _ => name.to_string(),
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_decl(""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_ia32() {
        assert_eq!(CType::Int.mem_size(), 4);
        assert_eq!(CType::Double.mem_size(), 8);
        assert_eq!(CType::Char.mem_size(), 1);
        assert_eq!(CType::Long.mem_size(), 4);
        assert_eq!(CType::Int.ptr_to().mem_size(), 4);
    }

    #[test]
    fn array_sizes_multiply() {
        let a = CType::Double.array_of(Some(100));
        assert_eq!(a.count(), 100);
        assert_eq!(a.mem_size(), 800);
        let m = CType::Double.array_of(Some(4)).array_of(Some(8));
        assert_eq!(m.count(), 32);
        assert_eq!(m.mem_size(), 256);
    }

    #[test]
    fn table_4_1_sizes() {
        // Table 4.1: `sum` is int* with size 3 (array of 3 decayed) — the
        // declared array `int sum[3]` has count 3, mem 12 bytes.
        assert_eq!(CType::Int.array_of(Some(3)).count(), 3);
        // `threads` is pthread_t[3]: size 3.
        let t = CType::Named("pthread_t".into()).array_of(Some(3));
        assert_eq!(t.count(), 3);
        assert_eq!(t.mem_size(), 12);
    }

    #[test]
    fn decay_turns_array_into_pointer() {
        let a = CType::Int.array_of(Some(3));
        assert_eq!(a.decay(), CType::Int.ptr_to());
        assert_eq!(CType::Int.decay(), CType::Int);
    }

    #[test]
    fn pthread_types_are_detected() {
        assert!(CType::Named("pthread_t".into()).is_pthread_type());
        assert!(CType::Named("pthread_mutex_t".into()).is_pthread_type());
        assert!(CType::Named("pthread_t".into())
            .array_of(Some(3))
            .is_pthread_type());
        assert!(!CType::Named("size_t".into()).is_pthread_type());
        assert!(!CType::Int.is_pthread_type());
    }

    #[test]
    fn display_decl_renders_declarators() {
        assert_eq!(CType::Int.display_decl("x"), "int x");
        assert_eq!(CType::Void.ptr_to().display_decl("p"), "void *p");
        assert_eq!(
            CType::Int.array_of(Some(3)).ptr_to().display_decl("p"),
            "int (*p)[3]"
        );
        assert_eq!(
            CType::Int.ptr_to().array_of(Some(3)).display_decl("a"),
            "int *a[3]"
        );
        assert_eq!(CType::Double.to_string(), "double");
    }

    #[test]
    fn classification_predicates() {
        assert!(CType::Double.is_float());
        assert!(!CType::Int.is_float());
        assert!(CType::Int.is_integer());
        assert!(CType::UInt.is_integer());
        assert!(!CType::Double.is_integer());
        assert!(CType::Void.ptr_to().is_pointer());
        assert!(CType::Int.array_of(None).is_array());
    }

    #[test]
    fn element_walks_one_level() {
        let t = CType::Int.ptr_to();
        assert_eq!(t.element(), Some(&CType::Int));
        assert_eq!(CType::Int.element(), None);
    }
}
