//! Token definitions for the C-subset lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate, e.g. `main`, `pthread_create`.
    Ident(String),
    /// A reserved keyword, e.g. `int`, `for`, `return`.
    Keyword(Keyword),
    /// An integer literal. Hex (`0x`), octal (`0`) and decimal forms are
    /// normalized to their value.
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),
    /// A character literal such as `'a'` (escapes resolved).
    CharLit(char),
    /// A string literal with escapes resolved.
    StrLit(String),
    /// A preprocessor line, e.g. `#include <stdio.h>`, kept verbatim
    /// (without the leading `#`).
    PreprocLine(String),
    /// A punctuation or operator token.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved keywords of the supported C subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Void,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Signed,
    Unsigned,
    Struct,
    Union,
    Enum,
    Typedef,
    Static,
    Extern,
    Const,
    Volatile,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Switch,
    Case,
    Default,
    Goto,
    Sizeof,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    #[allow(clippy::should_implement_trait)] // returns Option, not Result
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "void" => Void,
            "char" => Char,
            "short" => Short,
            "int" => Int,
            "long" => Long,
            "float" => Float,
            "double" => Double,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "typedef" => Typedef,
            "static" => Static,
            "extern" => Extern,
            "const" => Const,
            "volatile" => Volatile,
            "if" => If,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "for" => For,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "goto" => Goto,
            "sizeof" => Sizeof,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Void => "void",
            Char => "char",
            Short => "short",
            Int => "int",
            Long => "long",
            Float => "float",
            Double => "double",
            Signed => "signed",
            Unsigned => "unsigned",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Typedef => "typedef",
            Static => "static",
            Extern => "extern",
            Const => "const",
            Volatile => "volatile",
            If => "if",
            Else => "else",
            While => "while",
            Do => "do",
            For => "for",
            Return => "return",
            Break => "break",
            Continue => "continue",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Goto => "goto",
            Sizeof => "sizeof",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Question,
    Colon,
    // Arithmetic / bitwise / logical
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    // Comparison
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    // Assignment
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    // Inc/dec
    PlusPlus,
    MinusMinus,
}

impl Punct {
    /// The source spelling of the operator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Question => "?",
            Colon => ":",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            AmpAmp => "&&",
            PipePipe => "||",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            BangEq => "!=",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            PlusPlus => "++",
            MinusMinus => "--",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A lexed token: a [`TokenKind`] plus its [`Span`] in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::FloatLit(v) => write!(f, "{v}"),
            TokenKind::CharLit(c) => write!(f, "'{c}'"),
            TokenKind::StrLit(s) => write!(f, "{s:?}"),
            TokenKind::PreprocLine(s) => write!(f, "#{s}"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trips_through_spelling() {
        for kw in [
            Keyword::Void,
            Keyword::Int,
            Keyword::Double,
            Keyword::For,
            Keyword::Sizeof,
            Keyword::Unsigned,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn non_keyword_is_rejected() {
        assert_eq!(Keyword::from_str("pthread_t"), None);
        assert_eq!(Keyword::from_str(""), None);
    }

    #[test]
    fn punct_display_matches_spelling() {
        assert_eq!(Punct::Arrow.to_string(), "->");
        assert_eq!(Punct::ShlEq.to_string(), "<<=");
        assert_eq!(Punct::PlusPlus.to_string(), "++");
    }
}
