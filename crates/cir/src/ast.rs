//! The C intermediate representation (CIR) — a typed AST.
//!
//! This plays the role CETUS's IR tree plays in the paper: each analysis
//! stage walks it, and the Stage 5 translator rewrites it before the printer
//! emits C source again. Every expression, statement and declaration carries
//! a unique [`NodeId`] so analyses can attach facts to nodes in side tables.

use crate::span::Span;
use crate::types::CType;
use std::fmt;

/// A unique identifier for an AST node within one [`TranslationUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `&e` — address-of.
    Addr,
    /// `*e` — dereference.
    Deref,
    /// `-e` — arithmetic negation.
    Neg,
    /// `+e` — unary plus (no-op).
    Plus,
    /// `!e` — logical not.
    Not,
    /// `~e` — bitwise complement.
    BitNot,
    /// `++e` — pre-increment.
    PreInc,
    /// `--e` — pre-decrement.
    PreDec,
}

impl UnaryOp {
    /// The source spelling of the operator (prefix position).
    pub fn as_str(self) -> &'static str {
        match self {
            UnaryOp::Addr => "&",
            UnaryOp::Deref => "*",
            UnaryOp::Neg => "-",
            UnaryOp::Plus => "+",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::PreInc => "++",
            UnaryOp::PreDec => "--",
        }
    }
}

/// Binary operators (excluding assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// The source spelling of the operator.
    pub fn as_str(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    /// Whether the operator compares and yields an `int` 0/1.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Lt | Gt | Le | Ge | Eq | Ne)
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    RemAssign,
    ShlAssign,
    ShrAssign,
    AndAssign,
    XorAssign,
    OrAssign,
}

impl AssignOp {
    /// The source spelling of the operator.
    pub fn as_str(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            AddAssign => "+=",
            SubAssign => "-=",
            MulAssign => "*=",
            DivAssign => "/=",
            RemAssign => "%=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AndAssign => "&=",
            XorAssign => "^=",
            OrAssign => "|=",
        }
    }

    /// The underlying binary operator of a compound assignment, if any.
    pub fn binary_op(self) -> Option<BinaryOp> {
        use AssignOp::*;
        Some(match self {
            Assign => return None,
            AddAssign => BinaryOp::Add,
            SubAssign => BinaryOp::Sub,
            MulAssign => BinaryOp::Mul,
            DivAssign => BinaryOp::Div,
            RemAssign => BinaryOp::Rem,
            ShlAssign => BinaryOp::Shl,
            ShrAssign => BinaryOp::Shr,
            AndAssign => BinaryOp::BitAnd,
            XorAssign => BinaryOp::BitXor,
            OrAssign => BinaryOp::BitOr,
        })
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id.
    pub id: NodeId,
    /// Expression shape.
    pub kind: ExprKind,
    /// Source region.
    pub span: Span,
}

/// The shape of an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Character literal.
    CharLit(char),
    /// String literal.
    StrLit(String),
    /// Variable or function reference.
    Ident(String),
    /// Prefix unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Postfix `e++` (true) or `e--` (false).
    PostIncDec(Box<Expr>, bool),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment (simple or compound).
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call: callee expression and arguments.
    Call(Box<Expr>, Vec<Expr>),
    /// Array subscript `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `base.field` (arrow = false) or `base->field`.
    Member(Box<Expr>, String, bool),
    /// Explicit cast `(ty)e`.
    Cast(CType, Box<Expr>),
    /// `sizeof(type)`.
    SizeofType(CType),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
    /// Comma expression `a, b`.
    Comma(Box<Expr>, Box<Expr>),
    /// Brace initializer list `{a, b, c}` (only valid as an initializer).
    InitList(Vec<Expr>),
}

impl Expr {
    /// The identifier name if this is a bare identifier expression.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the called function's name when this is a direct call such as
    /// `pthread_create(...)`.
    pub fn call_target(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Call(callee, _) => callee.as_ident(),
            _ => None,
        }
    }

    /// Peels casts: `(void *) local` yields the inner `local` expression.
    pub fn peel_casts(&self) -> &Expr {
        match &self.kind {
            ExprKind::Cast(_, inner) => inner.peel_casts(),
            _ => self,
        }
    }

    /// The "base variable" of an lvalue chain, e.g. `sum` for
    /// `sum[tLocal]`, `p` for `*p`, `s` for `s.f`.
    pub fn base_variable(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            ExprKind::Index(base, _) => base.base_variable(),
            ExprKind::Member(base, _, _) => base.base_variable(),
            ExprKind::Unary(UnaryOp::Deref, inner) => inner.base_variable(),
            ExprKind::Cast(_, inner) => inner.base_variable(),
            _ => None,
        }
    }
}

/// Storage class of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Storage {
    /// No storage-class specifier.
    #[default]
    None,
    /// `static`.
    Static,
    /// `extern`.
    Extern,
    /// `typedef` (the declarator introduces a type alias).
    Typedef,
}

/// A single declarator within a declaration (`int *a, b[3];` has two).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Unique node id.
    pub id: NodeId,
    /// Declared name.
    pub name: String,
    /// Full declared type (pointers/arrays applied).
    pub ty: CType,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source region of the declarator.
    pub span: Span,
}

/// A declaration statement or top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Unique node id.
    pub id: NodeId,
    /// Storage class.
    pub storage: Storage,
    /// All declarators sharing the base type.
    pub vars: Vec<VarDecl>,
    /// Source region.
    pub span: Span,
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique node id.
    pub id: NodeId,
    /// Statement shape.
    pub kind: StmtKind,
    /// Source region.
    pub span: Span,
}

/// Loop initializer of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `for (int i = 0; ...)`.
    Decl(Declaration),
    /// `for (i = 0; ...)`.
    Expr(Expr),
}

/// The shape of a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement (`;` alone when `None`).
    Expr(Option<Expr>),
    /// Local declaration.
    Decl(Declaration),
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `if (cond) then else?`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`.
    While(Expr, Box<Stmt>),
    /// `do body while (cond);`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body`.
    For(Option<ForInit>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `switch (e) { ... }` — the body is a flat statement list in which
    /// [`StmtKind::Case`] and [`StmtKind::Default`] act as labels, giving
    /// C's fallthrough semantics.
    Switch(Expr, Vec<Stmt>),
    /// `case N:` label inside a switch body.
    Case(i64),
    /// `default:` label inside a switch body.
    Default,
    /// `return e?;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (empty for unnamed prototype params).
    pub name: String,
    /// Parameter type.
    pub ty: CType,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Unique node id.
    pub id: NodeId,
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements (the outer braces are implicit).
    pub body: Vec<Stmt>,
    /// Source region.
    pub span: Span,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A global declaration.
    Decl(Declaration),
    /// A function definition.
    Func(FunctionDef),
}

/// A parsed C source file: preprocessor lines plus top-level items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// Preprocessor lines in source order (without the leading `#`).
    pub preproc: Vec<String>,
    /// Top-level declarations and functions in source order.
    pub items: Vec<Item>,
    /// Next unassigned node id (used to mint fresh nodes during rewriting).
    pub next_id: u32,
}

impl TranslationUnit {
    /// Creates an empty translation unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh [`NodeId`] for nodes created during transformation.
    pub fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Iterates over all function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.items.iter().filter_map(|item| match item {
            Item::Func(f) => Some(f),
            Item::Decl(_) => None,
        })
    }

    /// Iterates mutably over all function definitions.
    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut FunctionDef> {
        self.items.iter_mut().filter_map(|item| match item {
            Item::Func(f) => Some(f),
            Item::Decl(_) => None,
        })
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions().find(|f| f.name == name)
    }

    /// Finds a function definition by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut FunctionDef> {
        self.functions_mut().find(|f| f.name == name)
    }

    /// Iterates over all global (top-level) declarations.
    pub fn global_decls(&self) -> impl Iterator<Item = &Declaration> {
        self.items.iter().filter_map(|item| match item {
            Item::Decl(d) => Some(d),
            Item::Func(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: ExprKind) -> Expr {
        Expr {
            id: NodeId(0),
            kind,
            span: Span::default(),
        }
    }

    #[test]
    fn assign_op_decomposes_to_binary() {
        assert_eq!(AssignOp::AddAssign.binary_op(), Some(BinaryOp::Add));
        assert_eq!(AssignOp::Assign.binary_op(), None);
        assert_eq!(AssignOp::ShlAssign.binary_op(), Some(BinaryOp::Shl));
    }

    #[test]
    fn peel_casts_reaches_core_expression() {
        let inner = e(ExprKind::Ident("local".into()));
        let cast = e(ExprKind::Cast(
            crate::types::CType::Void.ptr_to(),
            Box::new(inner),
        ));
        assert_eq!(cast.peel_casts().as_ident(), Some("local"));
    }

    #[test]
    fn base_variable_walks_lvalue_chains() {
        let sum = e(ExprKind::Ident("sum".into()));
        let idx = e(ExprKind::Index(
            Box::new(sum),
            Box::new(e(ExprKind::Ident("i".into()))),
        ));
        assert_eq!(idx.base_variable(), Some("sum"));

        let p = e(ExprKind::Ident("p".into()));
        let deref = e(ExprKind::Unary(UnaryOp::Deref, Box::new(p)));
        assert_eq!(deref.base_variable(), Some("p"));

        let lit = e(ExprKind::IntLit(3));
        assert_eq!(lit.base_variable(), None);
    }

    #[test]
    fn call_target_only_for_direct_calls() {
        let callee = e(ExprKind::Ident("pthread_create".into()));
        let call = e(ExprKind::Call(Box::new(callee), vec![]));
        assert_eq!(call.call_target(), Some("pthread_create"));

        let indirect = e(ExprKind::Call(
            Box::new(e(ExprKind::Unary(
                UnaryOp::Deref,
                Box::new(e(ExprKind::Ident("fp".into()))),
            ))),
            vec![],
        ));
        assert_eq!(indirect.call_target(), None);
    }

    #[test]
    fn fresh_ids_are_unique_and_monotonic() {
        let mut tu = TranslationUnit::new();
        tu.next_id = 10;
        let a = tu.fresh_id();
        let b = tu.fresh_id();
        assert_eq!(a, NodeId(10));
        assert_eq!(b, NodeId(11));
        assert!(a < b);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut tu = TranslationUnit::new();
        tu.items.push(Item::Func(FunctionDef {
            id: NodeId(0),
            name: "main".into(),
            ret: crate::types::CType::Int,
            params: vec![],
            body: vec![],
            span: Span::default(),
        }));
        assert!(tu.function("main").is_some());
        assert!(tu.function("tf").is_none());
        assert_eq!(tu.functions().count(), 1);
    }
}
