//! Property tests (testkit-driven): printing an AST and re-parsing the
//! output must be a fixpoint (print ∘ parse ∘ print == print), and lexing
//! printed operators must round-trip.
//!
//! Regressions found by the old proptest suite are pinned as named test
//! cases at the bottom instead of a `.proptest-regressions` seed file.

use hsm_cir::ast::*;
use hsm_cir::parser::parse;
use hsm_cir::printer::print_unit;
use hsm_cir::span::Span;
use hsm_cir::types::CType;
use testkit::{check, SplitMix64};

fn e(kind: ExprKind) -> Expr {
    Expr {
        id: NodeId(0),
        kind,
        span: Span::default(),
    }
}

const BINOPS: [BinaryOp; 18] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Rem,
    BinaryOp::Shl,
    BinaryOp::Shr,
    BinaryOp::Lt,
    BinaryOp::Gt,
    BinaryOp::Le,
    BinaryOp::Ge,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::BitAnd,
    BinaryOp::BitXor,
    BinaryOp::BitOr,
    BinaryOp::LogAnd,
    BinaryOp::LogOr,
];

const UNOPS: [UnaryOp; 5] = [
    UnaryOp::Neg,
    UnaryOp::Not,
    UnaryOp::BitNot,
    UnaryOp::Deref,
    UnaryOp::Addr,
];

/// Identifiers drawn from a small pool that the harness declares.
const IDENTS: [&str; 5] = ["a", "b", "c", "p", "arr"];

/// Random expression over the harness's declared names, depth-bounded like
/// the old `prop_recursive(4, ..)` strategy.
fn gen_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range_usize(0, 4) == 0 {
        return if rng.gen_bool() {
            e(ExprKind::IntLit(rng.gen_range_i64(0, 1000)))
        } else {
            e(ExprKind::Ident((*rng.choose(&IDENTS)).to_string()))
        };
    }
    let d = depth - 1;
    match rng.gen_range_usize(0, 6) {
        0 => e(ExprKind::Binary(
            *rng.choose(&BINOPS),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        )),
        1 => e(ExprKind::Unary(
            *rng.choose(&UNOPS),
            Box::new(gen_expr(rng, d)),
        )),
        2 => e(ExprKind::Ternary(
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        )),
        3 => e(ExprKind::Index(
            Box::new(e(ExprKind::Ident("arr".into()))),
            Box::new(e(ExprKind::Binary(
                BinaryOp::Add,
                Box::new(gen_expr(rng, d)),
                Box::new(gen_expr(rng, d)),
            ))),
        )),
        4 => e(ExprKind::Cast(CType::Int, Box::new(gen_expr(rng, d)))),
        _ => e(ExprKind::PostIncDec(
            Box::new(e(ExprKind::Ident("a".into()))),
            true,
        )),
    }
}

/// Wraps an expression into a compilable harness program.
fn harness(expr: &Expr) -> TranslationUnit {
    let src = "int a; int b; int c; int *p; int arr[16]; int main() { return 0; }";
    let mut tu = parse(src).expect("harness parses");
    let ret_stmt = Stmt {
        id: NodeId(9000),
        kind: StmtKind::Expr(Some(expr.clone())),
        span: Span::default(),
    };
    let main = tu.function_mut("main").expect("main");
    main.body.insert(0, ret_stmt);
    tu
}

/// The fixpoint check shared by the random property and the pinned
/// regressions: print(parse(print(ast))) == print(ast).
fn assert_fixpoint(expr: &Expr) {
    let tu = harness(expr);
    let printed = print_unit(&tu);
    let reparsed = parse(&printed)
        .unwrap_or_else(|err| panic!("printed source failed to parse: {err}\n{printed}"));
    let printed2 = print_unit(&reparsed);
    assert_eq!(printed, printed2);
}

// ------------------------------------------------------- properties --

/// print(parse(print(ast))) == print(ast): printing is a fixpoint and the
/// printed source is always parseable.
#[test]
fn print_parse_print_is_fixpoint() {
    check("print_parse_print_is_fixpoint", 256, |rng| {
        let expr = gen_expr(rng, 4);
        assert_fixpoint(&expr);
    });
}

/// Integer literals survive the full pipeline unchanged.
#[test]
fn int_literals_round_trip() {
    check("int_literals_round_trip", 256, |rng| {
        let v = rng.gen_range_i64(0, i64::MAX / 2);
        let src = format!("long x = {v};");
        let tu = parse(&src).unwrap();
        let printed = print_unit(&tu);
        assert!(printed.contains(&v.to_string()));
        let again = parse(&printed).unwrap();
        assert_eq!(print_unit(&again), printed);
    });
}

const IDENT_FIRST: [char; 53] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L',
    'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '_',
];

const IDENT_REST: [char; 63] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L',
    'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '_', '0', '1', '2', '3',
    '4', '5', '6', '7', '8', '9',
];

/// Any identifier-shaped name lexes back to itself.
#[test]
fn identifiers_round_trip() {
    check("identifiers_round_trip", 256, |rng| {
        let mut name = String::new();
        name.push(*rng.choose(&IDENT_FIRST));
        let rest = rng.gen_range_usize(0, 13);
        name.push_str(&rng.gen_string(&IDENT_REST, rest));
        if hsm_cir::token::Keyword::from_str(&name).is_some() {
            return;
        }
        // Skip names the parser treats as type names.
        let src = format!("int {name};");
        if let Ok(tu) = parse(&src) {
            let printed = print_unit(&tu);
            assert!(printed.contains(&name));
        }
    });
}

/// String literal escaping round-trips arbitrary printable content.
#[test]
fn string_literals_round_trip() {
    check("string_literals_round_trip", 256, |rng| {
        let len = rng.gen_range_usize(0, 25);
        let s: String = (0..len)
            .map(|_| char::from(rng.gen_range_u64(0x20, 0x7F) as u8))
            .collect();
        let escaped: String = s
            .chars()
            .flat_map(|ch| match ch {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                other => vec![other],
            })
            .collect();
        let src = format!("int main() {{ printf(\"{escaped}\"); return 0; }}");
        let tu = parse(&src).unwrap();
        let printed = print_unit(&tu);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(print_unit(&reparsed), printed);
    });
}

/// The lexer never panics: arbitrary input either lexes or returns a
/// located error.
#[test]
fn lexer_is_total() {
    check("lexer_is_total", 256, |rng| {
        let len = rng.gen_range_usize(0, 201);
        let input: String = (0..len)
            .map(|_| {
                // Arbitrary scalar values, surrogates skipped — covers
                // ASCII, multi-byte UTF-8 and astral-plane characters.
                loop {
                    let v = rng.gen_range_u64(0, 0x11_0000) as u32;
                    if let Some(ch) = char::from_u32(v) {
                        return ch;
                    }
                }
            })
            .collect();
        let _ = hsm_cir::lexer::lex(&input);
    });
}

const SOUP: [char; 30] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'x', 'y', 'z', '0', '1', '9', '(', ')', '{', '}', ';', '*', '&',
    '=', '+', '<', '>', ',', '.', '"', '\'', ' ', '\n', '-',
];

/// The parser never panics on arbitrary token-shaped soup.
#[test]
fn parser_is_total() {
    check("parser_is_total", 256, |rng| {
        let len = rng.gen_range_usize(0, 301);
        let input = rng.gen_string(&SOUP, len);
        let _ = parse(&input);
    });
}

/// Whatever parses must print and re-parse to a fixpoint — for whole
/// random programs assembled from statement templates.
#[test]
fn random_programs_round_trip() {
    let templates = [
        "a = a + 1;",
        "b = a * 2 - c;",
        "if (a > b) { c = 1; } else { c = 2; }",
        "while (a > 0) { a = a - 1; }",
        "for (a = 0; a < 5; a++) { arr[a] = a; }",
        "p = &a;",
        "c = *p;",
        "switch (a) { case 1: b = 1; break; default: b = 0; }",
    ];
    check("random_programs_round_trip", 256, |rng| {
        let count = rng.gen_range_usize(1, 12);
        let n = rng.gen_range_usize(1, 20);
        let body: String = (0..count)
            .map(|_| *rng.choose(&templates))
            .collect::<Vec<_>>()
            .join("\n    ");
        let src = format!(
            "int a; int b; int c; int *p; int arr[{n}];\nint main() {{\n    {body}\n    return a + b + c;\n}}\n"
        );
        let tu = parse(&src).expect("template program parses");
        let printed = print_unit(&tu);
        let reparsed = parse(&printed).expect("printed parses");
        assert_eq!(print_unit(&reparsed), printed);
    });
}

// ------------------------------------------------- pinned regressions --

/// Pinned from the retired `.proptest-regressions` file: proptest once
/// shrank a fixpoint failure to `&(&0)` — taking the address of an
/// address-of expression, which exercises parenthesisation of nested
/// prefix `&` in the printer.
#[test]
fn regression_addr_of_addr_of_literal() {
    let expr = e(ExprKind::Unary(
        UnaryOp::Addr,
        Box::new(e(ExprKind::Unary(
            UnaryOp::Addr,
            Box::new(e(ExprKind::IntLit(0))),
        ))),
    ));
    assert_fixpoint(&expr);
}
