//! Property tests: printing an AST and re-parsing the output must be a
//! fixpoint (print ∘ parse ∘ print == print), and lexing printed operators
//! must round-trip.

use hsm_cir::ast::*;
use hsm_cir::parser::parse;
use hsm_cir::printer::print_unit;
use hsm_cir::span::Span;
use hsm_cir::types::CType;
use proptest::prelude::*;

fn e(kind: ExprKind) -> Expr {
    Expr {
        id: NodeId(0),
        kind,
        span: Span::default(),
    }
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Rem),
        Just(BinaryOp::Shl),
        Just(BinaryOp::Shr),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Ge),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
        Just(BinaryOp::BitAnd),
        Just(BinaryOp::BitXor),
        Just(BinaryOp::BitOr),
        Just(BinaryOp::LogAnd),
        Just(BinaryOp::LogOr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Neg),
        Just(UnaryOp::Not),
        Just(UnaryOp::BitNot),
        Just(UnaryOp::Deref),
        Just(UnaryOp::Addr),
    ]
}

/// Identifiers drawn from a small pool that the harness declares.
fn arb_ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("p".to_string()),
        Just("arr".to_string()),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| e(ExprKind::IntLit(v))),
        arb_ident().prop_map(|n| e(ExprKind::Ident(n))),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| e(
                ExprKind::Binary(op, Box::new(l), Box::new(r))
            )),
            (arb_unop(), inner.clone()).prop_map(|(op, x)| e(ExprKind::Unary(
                op,
                Box::new(x)
            ))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| e(
                ExprKind::Ternary(Box::new(c), Box::new(t), Box::new(f))
            )),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| e(ExprKind::Index(
                Box::new(e(ExprKind::Ident("arr".into()))),
                Box::new(e(ExprKind::Binary(
                    BinaryOp::Add,
                    Box::new(b),
                    Box::new(i)
                )))
            ))),
            inner
                .clone()
                .prop_map(|x| e(ExprKind::Cast(CType::Int, Box::new(x)))),
            inner.clone().prop_map(|_| e(ExprKind::PostIncDec(
                Box::new(e(ExprKind::Ident("a".into()))),
                true
            ))),
        ]
    })
}

/// Wraps an expression into a compilable harness program.
fn harness(expr: &Expr) -> TranslationUnit {
    let src = "int a; int b; int c; int *p; int arr[16]; int main() { return 0; }";
    let mut tu = parse(src).expect("harness parses");
    let ret_stmt = Stmt {
        id: NodeId(9000),
        kind: StmtKind::Expr(Some(expr.clone())),
        span: Span::default(),
    };
    let main = tu.function_mut("main").expect("main");
    main.body.insert(0, ret_stmt);
    tu
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print(parse(print(ast))) == print(ast): printing is a fixpoint and
    /// the printed source is always parseable.
    #[test]
    fn print_parse_print_is_fixpoint(expr in arb_expr()) {
        let tu = harness(&expr);
        let printed = print_unit(&tu);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("printed source failed to parse: {err}\n{printed}"));
        let printed2 = print_unit(&reparsed);
        prop_assert_eq!(printed, printed2);
    }

    /// Integer literals survive the full pipeline unchanged.
    #[test]
    fn int_literals_round_trip(v in 0i64..i64::MAX / 2) {
        let src = format!("long x = {v};");
        let tu = parse(&src).unwrap();
        let printed = print_unit(&tu);
        prop_assert!(printed.contains(&v.to_string()));
        let again = parse(&printed).unwrap();
        prop_assert_eq!(print_unit(&again), printed);
    }

    /// Any identifier-shaped name lexes back to itself.
    #[test]
    fn identifiers_round_trip(name in "[a-zA-Z_][a-zA-Z0-9_]{0,12}") {
        prop_assume!(hsm_cir::token::Keyword::from_str(&name).is_none());
        // Skip names the parser treats as type names.
        let src = format!("int {name};");
        if let Ok(tu) = parse(&src) {
            let printed = print_unit(&tu);
            prop_assert!(printed.contains(&name));
        }
    }

    /// String literal escaping round-trips arbitrary printable content.
    #[test]
    fn string_literals_round_trip(s in "[ -~]{0,24}") {
        let escaped: String = s
            .chars()
            .flat_map(|ch| match ch {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                other => vec![other],
            })
            .collect();
        let src = format!("int main() {{ printf(\"{escaped}\"); return 0; }}");
        let tu = parse(&src).unwrap();
        let printed = print_unit(&tu);
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(print_unit(&reparsed), printed);
    }

    /// The lexer never panics: arbitrary input either lexes or returns a
    /// located error.
    #[test]
    fn lexer_is_total(input in "\\PC{0,200}") {
        let _ = hsm_cir::lexer::lex(&input);
    }

    /// The parser never panics on arbitrary token-shaped soup.
    #[test]
    fn parser_is_total(input in "[a-z0-9(){};*&=+<>,.\"' \n-]{0,300}") {
        let _ = parse(&input);
    }

    /// Whatever parses must print and re-parse to a fixpoint — for whole
    /// random programs assembled from statement templates.
    #[test]
    fn random_programs_round_trip(
        stmts in proptest::collection::vec(0usize..8, 1..12),
        n in 1usize..20,
    ) {
        let templates = [
            "a = a + 1;",
            "b = a * 2 - c;",
            "if (a > b) { c = 1; } else { c = 2; }",
            "while (a > 0) { a = a - 1; }",
            "for (a = 0; a < 5; a++) { arr[a] = a; }",
            "p = &a;",
            "c = *p;",
            "switch (a) { case 1: b = 1; break; default: b = 0; }",
        ];
        let body: String = stmts.iter().map(|&i| templates[i]).collect::<Vec<_>>().join("\n    ");
        let src = format!(
            "int a; int b; int c; int *p; int arr[{n}];\nint main() {{\n    {body}\n    return a + b + c;\n}}\n"
        );
        let tu = parse(&src).expect("template program parses");
        let printed = print_unit(&tu);
        let reparsed = parse(&printed).expect("printed parses");
        prop_assert_eq!(print_unit(&reparsed), printed);
    }
}
