#!/usr/bin/env python3
"""Gate interpreter throughput against the committed baseline.

Usage: check_bench.py bench-out/BENCH_interp.json crates/bench/goldens/BENCH_interp.json

`figures --host-timing` measures VM steps per host second for every corpus
program × execution mode × memory model and writes the fresh report; the
baseline is the committed snapshot of the same document. This script:

  * requires the two reports to cover the same (name, mode, exec_model)
    points with identical deterministic counters (instructions, events,
    cores) — a counter diff means the dispatch layer changed *what*
    executes, which the goldens must adjudicate, so regenerate the
    baseline deliberately;
  * always prints a per-point steps/sec delta table (speedups included —
    the point is a visible perf trajectory, not just a tripwire);
  * fails if any point regresses more than REGRESSION_LIMIT versus the
    baseline's steps/sec.

Host timings are noisy and CI machines differ from the machine that
recorded the baseline, hence the deliberately wide 30 % margin. The gate
also compares the fresh report's *best* run (min nanos) against the
baseline's median-derived steps/sec: a genuine regression slows every
run, while scheduler jitter only slows some, so this catches "the fast
path fell off a cliff" without tripping on a noisy neighbour. The
printed table still shows median-vs-median deltas.

Regenerate the baseline with:
  cargo build --release -p hsm-bench --bin figures
  ./target/release/figures --host-timing
  cp bench-out/BENCH_interp.json crates/bench/goldens/BENCH_interp.json
"""

import json
import sys

# Fail when fresh steps/sec drops below (1 - REGRESSION_LIMIT) × baseline.
REGRESSION_LIMIT = 0.30

# Deterministic per-point fields that must match the baseline exactly.
EXACT_KEYS = ("cores", "instructions", "events")


def load_points(path):
    """Returns {(name, mode, exec_model): point} for one report."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    points = {}
    for p in doc.get("points", []):
        points[(p["name"], p["mode"], p["exec_model"])] = p
    if not points:
        sys.exit(f"{path}: no measurement points")
    return points


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} FRESH_REPORT BASELINE_REPORT")
    fresh_path, base_path = sys.argv[1], sys.argv[2]
    fresh = load_points(fresh_path)
    base = load_points(base_path)

    problems = []
    if set(fresh) != set(base):
        missing = sorted(set(base) - set(fresh))
        extra = sorted(set(fresh) - set(base))
        for key in missing:
            problems.append(f"point {key} in baseline but not in fresh report")
        for key in extra:
            problems.append(f"point {key} measured but absent from baseline")

    rows = []
    for key in sorted(set(fresh) & set(base)):
        fp, bp = fresh[key], base[key]
        for field in EXACT_KEYS:
            if fp.get(field) != bp.get(field):
                problems.append(
                    f"point {key}: deterministic counter {field!r} changed "
                    f"({bp.get(field)} -> {fp.get(field)})"
                )
        got, want = fp["steps_per_sec"], bp["steps_per_sec"]
        delta = (got - want) / want if want else 0.0
        # Gate on the fresh best run: immune to one slow, noisy repetition.
        min_nanos = fp.get("host_min_nanos", 0)
        best = fp["instructions"] * 1e9 / min_nanos if min_nanos else got
        regressed = want > 0 and best < want * (1.0 - REGRESSION_LIMIT)
        if regressed:
            problems.append(
                f"point {key}: steps/sec regressed {-delta:.1%} "
                f"({want} -> {got}), limit is {REGRESSION_LIMIT:.0%}"
            )
        rows.append((key, want, got, delta, regressed))

    name_w = max((len("/".join(k)) for k, *_ in rows), default=10) + 2
    print(f"{'Point':<{name_w}}{'Baseline':>14}{'Fresh':>14}{'Delta':>9}")
    print("-" * (name_w + 37))
    for key, want, got, delta, regressed in rows:
        flag = "  REGRESSED" if regressed else ""
        print(f"{'/'.join(key):<{name_w}}{want:>14}{got:>14}{delta:>+9.1%}{flag}")

    if problems:
        listing = "\n".join(f"  {p}" for p in problems)
        sys.exit(
            f"{fresh_path} failed the bench gate:\n{listing}\n"
            "If the change is intentional, regenerate the baseline:\n"
            "  ./target/release/figures --host-timing\n"
            f"  cp {fresh_path} {base_path}"
        )
    print(f"\n{fresh_path}: {len(rows)} points within {REGRESSION_LIMIT:.0%} of {base_path}")


if __name__ == "__main__":
    main()
