#!/usr/bin/env python3
"""Diff a freshly generated run manifest against the checked-in golden.

Usage: check_manifest.py BENCH_pipeline.json crates/bench/goldens/manifest_golden.json

The full manifest covers more programs than the golden and includes
host-dependent `host_wall_nanos` timings; this script restricts the fresh
manifest to the golden's program set, strips every `host_*` key, and then
requires exact structural equality. It is the CI half of the
`manifest_golden` regression test: the Rust test pins `golden_manifest()`
directly, this pins the `figures --json` binary's output path through the
same goldens.
"""

import json
import sys


def strip_host_keys(node):
    """Recursively drops dict keys starting with `host_` (host-dependent)."""
    if isinstance(node, dict):
        return {
            k: strip_host_keys(v) for k, v in node.items() if not k.startswith("host_")
        }
    if isinstance(node, list):
        return [strip_host_keys(v) for v in node]
    return node


def describe_diff(path, got, want, out):
    """Appends human-readable leaf differences between two JSON trees."""
    if type(got) is not type(want):
        out.append(f"{path}: type {type(got).__name__} != {type(want).__name__}")
        return
    if isinstance(got, dict):
        for k in sorted(set(got) | set(want)):
            if k not in got:
                out.append(f"{path}.{k}: missing from fresh manifest")
            elif k not in want:
                out.append(f"{path}.{k}: not in golden")
            else:
                describe_diff(f"{path}.{k}", got[k], want[k], out)
    elif isinstance(got, list):
        if len(got) != len(want):
            out.append(f"{path}: length {len(got)} != {len(want)}")
        for i, (g, w) in enumerate(zip(got, want)):
            describe_diff(f"{path}[{i}]", g, w, out)
    elif got != want:
        out.append(f"{path}: {got!r} != {want!r}")


def check_opt_axis(fresh, fresh_path):
    """Validates the schema-v4 `opt` section of the full fresh manifest.

    Two invariants, checked over the *whole* corpus before restricting to
    the golden program set:

    * the O2 optimizer must actually pay for itself — at least three
      programs must show a strictly positive dynamic instruction-count
      reduction (`instructions_delta > 0`);
    * optimization must never cost simulated time — every program's O2
      `timed_cycles` must be <= its O0 `timed_cycles`.
    """
    opt = fresh.get("opt")
    if not isinstance(opt, list) or not opt:
        sys.exit(f"{fresh_path}: missing or empty `opt` section (schema v4)")

    wins = []
    for entry in opt:
        name = entry.get("name", "<unnamed>")
        for key in ("instr_static_delta", "instructions_delta", "timed_cycles_delta"):
            if not isinstance(entry.get(key), int):
                sys.exit(f"{fresh_path}: opt entry {name!r} lacks integer {key!r}")
        for level in ("O0", "O2"):
            if not isinstance(entry.get(level), dict):
                sys.exit(f"{fresh_path}: opt entry {name!r} lacks {level!r} metrics")
        if entry["instructions_delta"] > 0:
            wins.append(name)
        o0, o2 = entry["O0"]["timed_cycles"], entry["O2"]["timed_cycles"]
        if o2 > o0:
            sys.exit(
                f"{fresh_path}: opt entry {name!r} regressed simulated time: "
                f"O2 timed_cycles {o2} > O0 {o0}"
            )

    if len(wins) < 3:
        sys.exit(
            f"{fresh_path}: only {len(wins)} program(s) show a strictly "
            f"positive O2 instruction reduction ({wins}); need >= 3"
        )
    print(
        f"{fresh_path}: opt axis ok — {len(wins)}/{len(opt)} programs reduce "
        "dynamic instructions at O2, none regress simulated cycles"
    )


def check_tasks_axis(fresh, fresh_path):
    """Validates the schema-v5 `tasks` section of the full fresh manifest.

    Every barrier-vs-task pair the manifest ran must agree: the task
    port's `outputs_match` verdict (same output, same exit code as the
    barrier original) is the correctness gate for the task-dataflow
    runtime, checked over the whole corpus before restricting to the
    golden program set.
    """
    tasks = fresh.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        sys.exit(f"{fresh_path}: missing or empty `tasks` section (schema v5)")

    for entry in tasks:
        name = entry.get("name", "<unnamed>")
        if not isinstance(entry.get("task_program"), str):
            sys.exit(f"{fresh_path}: tasks entry {name!r} lacks `task_program`")
        if entry.get("outputs_match") is not True:
            sys.exit(
                f"{fresh_path}: tasks entry {name!r} diverged: the "
                "task-dataflow port no longer matches the barrier original"
            )
        for side in ("barrier", "task"):
            block = entry.get(side)
            if not isinstance(block, dict):
                sys.exit(f"{fresh_path}: tasks entry {name!r} lacks {side!r} metrics")
            for key in ("timed_cycles", "total_cycles", "instructions", "exit_code"):
                if not isinstance(block.get(key), int):
                    sys.exit(
                        f"{fresh_path}: tasks entry {name!r} {side} block "
                        f"lacks integer {key!r}"
                    )
    print(
        f"{fresh_path}: task axis ok — {len(tasks)} barrier/task pair(s), "
        "all outputs match"
    )


def check_predict_axis(fresh, fresh_path):
    """Validates the schema-v6 `predict` section of the full fresh manifest.

    The deep ±15% accuracy gate lives in `check_predict.py` (over the
    dedicated BENCH_predict.json report); here we require the section's
    shape and its two built-in invariants: every surface's seed point is
    reproduced exactly, and every point carries integer predicted/actual
    cycles with absolute and relative errors.
    """
    predict = fresh.get("predict")
    if not isinstance(predict, dict) or not predict.get("surfaces"):
        sys.exit(f"{fresh_path}: missing or empty `predict` section (schema v6)")

    for surface in predict["surfaces"]:
        name = surface.get("name", "<unnamed>")
        for key in ("mode", "exec_model"):
            if not isinstance(surface.get(key), str):
                sys.exit(f"{fresh_path}: predict surface {name!r} lacks {key!r}")
        points = surface.get("points")
        if not isinstance(points, list) or not points:
            sys.exit(f"{fresh_path}: predict surface {name!r} has no points")
        for point in points:
            for key in ("cores", "predicted_cycles", "actual_cycles", "abs_error", "rel_error_bp"):
                if not isinstance(point.get(key), int):
                    sys.exit(
                        f"{fresh_path}: predict surface {name!r} point "
                        f"lacks integer {key!r}"
                    )
            if point.get("seed") is True and point["rel_error_bp"] != 0:
                sys.exit(
                    f"{fresh_path}: predict surface {name!r} seed point is "
                    f"not reproduced exactly ({point['rel_error_bp']} bp)"
                )
    print(
        f"{fresh_path}: predict axis ok — {len(predict['surfaces'])} "
        "surface(s), all seed points exact"
    )


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} FRESH_MANIFEST GOLDEN_MANIFEST")
    fresh_path, golden_path = sys.argv[1], sys.argv[2]
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(golden_path) as f:
        golden = json.load(f)

    if "error" in fresh:
        err = fresh["error"]
        sys.exit(
            f"{fresh_path} is an error manifest: the sweep failed in the "
            f"{err.get('stage')!r} stage: {err.get('message')}"
        )

    # The sweep engine must actually have reused artifacts across the
    # baseline/HSM runs of each program: a manifest with zero cache hits
    # means every pipeline ran cold and the session cache is broken.
    cache = fresh.get("sweep", {}).get("cache", {})
    if cache.get("total_hits", 0) <= 0:
        sys.exit(f"{fresh_path}: sweep cache recorded no hits: {cache}")
    if cache.get("total_misses", 0) <= 0:
        sys.exit(f"{fresh_path}: sweep cache recorded no misses: {cache}")

    check_opt_axis(fresh, fresh_path)
    check_tasks_axis(fresh, fresh_path)
    check_predict_axis(fresh, fresh_path)

    if "opt" not in golden or "tasks" not in golden or "predict" not in golden:
        sys.exit(
            f"{golden_path} lacks the `opt`, `tasks` or `predict` section: it "
            f"predates manifest schema v6 (it reports schema_version "
            f"{golden.get('schema_version')!r}). Regenerate the golden with\n"
            "  UPDATE_GOLDENS=1 cargo test -p hsm-bench --test manifest_golden"
        )

    # The `sweep` section is compared only via the hit/miss assertions
    # above: its counter totals legitimately differ between the full
    # 5-program manifest and the 2-program golden.
    golden_names = [p["name"] for p in golden["programs"]]
    # The `predict` section's held-out corpus is fixed (independent of
    # the manifest's program list), so fresh and golden carry it whole.
    restricted = {
        "schema_version": fresh["schema_version"],
        "config": fresh["config"],
        "opt": [o for o in fresh["opt"] if o["name"] in golden_names],
        "tasks": [t for t in fresh["tasks"] if t["name"] in golden_names],
        "predict": fresh["predict"],
        "programs": [p for p in fresh["programs"] if p["name"] in golden_names],
    }
    restricted = strip_host_keys(restricted)
    golden = strip_host_keys(
        {
            "schema_version": golden["schema_version"],
            "config": golden["config"],
            "opt": golden["opt"],
            "tasks": golden["tasks"],
            "predict": golden["predict"],
            "programs": golden["programs"],
        }
    )

    fresh_names = [p["name"] for p in restricted["programs"]]
    if fresh_names != golden_names:
        sys.exit(
            f"golden programs {golden_names} not covered: fresh manifest has {fresh_names}"
        )

    if restricted != golden:
        diffs = []
        describe_diff("$", restricted, golden, diffs)
        listing = "\n".join(f"  {d}" for d in diffs[:40])
        sys.exit(
            f"{fresh_path} diverged from {golden_path}:\n{listing}\n"
            "If the change is intentional, regenerate the golden with\n"
            "  UPDATE_GOLDENS=1 cargo test -p hsm-bench --test manifest_golden"
        )

    print(f"{fresh_path} matches {golden_path} on {len(golden_names)} programs")


if __name__ == "__main__":
    main()
