#!/usr/bin/env python3
"""Gate the cycle predictor's accuracy against the error budget and the
committed baseline.

Usage: check_predict.py bench-out/BENCH_predict.json BENCH_predict.json

`figures --predict` fits the cycle predictor from one profiled seed run
per held-out (program, scenario) surface — `dot_product` in barrier and
task forms, under all three memory models — then simulates every point
of the 2-32 core axis for ground truth and writes the fresh report. The
baseline is the committed snapshot of the same document. This script:

  * fails if the mean relative error of the extrapolated points exceeds
    ERROR_LIMIT_BP (15%) — overall and per surface at a looser 2x
    per-surface margin, so one pathological surface cannot hide inside
    a good average;
  * requires every surface's seed point to be reproduced exactly
    (rel_error_bp == 0): the residual-calibration contract;
  * requires the fresh report to cover the same (name, mode,
    exec_model) surfaces as the baseline with identical simulated
    ground-truth cycles — the simulator is deterministic, so an
    actual-cycles diff means execution changed and the baseline must be
    regenerated deliberately;
  * prints the per-surface error table either way.

Regenerate the baseline with:
  cargo build --release -p hsm-bench --bin figures
  ./target/release/figures --predict
  cp bench-out/BENCH_predict.json BENCH_predict.json
"""

import json
import sys

# Mean extrapolation error budget, in basis points (1 bp = 0.01%).
ERROR_LIMIT_BP = 1500

# A single surface may be worse than the mean budget, but not unboundedly.
SURFACE_LIMIT_BP = 2 * ERROR_LIMIT_BP


def load_surfaces(path):
    """Returns (doc, {(name, mode, exec_model): surface}) for one report."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 6:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    surfaces = {}
    for s in doc.get("surfaces", []):
        surfaces[(s["name"], s["mode"], s["exec_model"])] = s
    if not surfaces:
        sys.exit(f"{path}: no predicted surfaces")
    return doc, surfaces


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} FRESH_REPORT BASELINE_REPORT")
    fresh_path, base_path = sys.argv[1], sys.argv[2]
    fresh_doc, fresh = load_surfaces(fresh_path)
    _, base = load_surfaces(base_path)

    problems = []
    if set(fresh) != set(base):
        for key in sorted(set(base) - set(fresh)):
            problems.append(f"surface {key} in baseline but not in fresh report")
        for key in sorted(set(fresh) - set(base)):
            problems.append(f"surface {key} measured but absent from baseline")

    rows = []
    for key in sorted(fresh):
        surface = fresh[key]
        mean_bp = surface.get("mean_rel_error_bp")
        if not isinstance(mean_bp, int):
            problems.append(f"surface {key}: missing mean_rel_error_bp")
            continue
        if mean_bp > SURFACE_LIMIT_BP:
            problems.append(
                f"surface {key}: mean extrapolation error {mean_bp / 100:.2f}% "
                f"exceeds the per-surface limit {SURFACE_LIMIT_BP / 100:.0f}%"
            )
        for point in surface.get("points", []):
            if point.get("seed") and point.get("rel_error_bp") != 0:
                problems.append(
                    f"surface {key}: seed point not reproduced exactly "
                    f"({point.get('rel_error_bp')} bp)"
                )
        if key in base:
            got = [(p["cores"], p["actual_cycles"]) for p in surface.get("points", [])]
            want = [(p["cores"], p["actual_cycles"]) for p in base[key].get("points", [])]
            if got != want:
                problems.append(
                    f"surface {key}: simulated ground-truth cycles changed "
                    f"({want} -> {got}); regenerate the baseline deliberately"
                )
        rows.append((key, mean_bp))

    name_w = max((len("/".join(k)) for k, _ in rows), default=10) + 2
    print(f"{'Surface':<{name_w}}{'Mean err':>10}")
    print("-" * (name_w + 10))
    for key, mean_bp in rows:
        print(f"{'/'.join(key):<{name_w}}{mean_bp / 100:>9.2f}%")

    overall = fresh_doc.get("mean_rel_error_bp")
    if not isinstance(overall, int):
        problems.append("report lacks the overall mean_rel_error_bp")
    elif overall > ERROR_LIMIT_BP:
        problems.append(
            f"overall mean extrapolation error {overall / 100:.2f}% exceeds "
            f"the {ERROR_LIMIT_BP / 100:.0f}% budget"
        )
    else:
        print(
            f"\noverall mean extrapolation error {overall / 100:.2f}% "
            f"(budget {ERROR_LIMIT_BP / 100:.0f}%)"
        )

    if problems:
        listing = "\n".join(f"  {p}" for p in problems)
        sys.exit(
            f"{fresh_path} failed the predict gate:\n{listing}\n"
            "If the change is intentional, regenerate the baseline:\n"
            "  ./target/release/figures --predict\n"
            f"  cp {fresh_path} {base_path}"
        )
    print(f"{fresh_path}: {len(rows)} surfaces within budget, matching {base_path}")


if __name__ == "__main__":
    main()
