#!/usr/bin/env python3
"""Verify the persistent artifact store's warm-cache guarantees.

Usage: check_warm_cache.py COLD_MANIFEST WARM_MANIFEST

COLD_MANIFEST and WARM_MANIFEST are two `figures --json` manifests
generated back to back against the same `--cache-dir`. The script checks
the tentpole's two acceptance properties:

* determinism — the two manifests are identical once every host-dependent
  `host_*` key is stripped (the persistent store must never leak into the
  simulated numbers);
* warm reuse — the warm manifest's `sweep.host_store` block reports
  loads > 0 and zero store misses (nothing was re-parsed, re-analyzed,
  re-translated or re-compiled), while the cold manifest reports
  misses > 0 and writes > 0 (the store was actually populated).
"""

import json
import sys


def strip_host_keys(node):
    """Recursively drops dict keys starting with `host_` (host-dependent)."""
    if isinstance(node, dict):
        return {
            k: strip_host_keys(v) for k, v in node.items() if not k.startswith("host_")
        }
    if isinstance(node, list):
        return [strip_host_keys(v) for v in node]
    return node


def store_block(manifest, path):
    store = manifest.get("sweep", {}).get("host_store")
    if not isinstance(store, dict):
        sys.exit(
            f"{path}: no `sweep.host_store` block — was the manifest "
            "generated with --cache-dir (and host timings enabled)?"
        )
    return store


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} COLD_MANIFEST WARM_MANIFEST")
    cold_path, warm_path = sys.argv[1], sys.argv[2]
    with open(cold_path) as f:
        cold = json.load(f)
    with open(warm_path) as f:
        warm = json.load(f)

    for manifest, path in ((cold, cold_path), (warm, warm_path)):
        if "error" in manifest:
            err = manifest["error"]
            sys.exit(
                f"{path} is an error manifest: the sweep failed in the "
                f"{err.get('stage')!r} stage: {err.get('message')}"
            )

    if strip_host_keys(cold) != strip_host_keys(warm):
        sys.exit(
            f"{cold_path} and {warm_path} differ outside host_* keys: the "
            "persistent store changed the simulated results"
        )

    cold_store = store_block(cold, cold_path)
    if cold_store.get("misses", 0) <= 0 or cold_store.get("writes", 0) <= 0:
        sys.exit(
            f"{cold_path}: cold run did not populate the store: {cold_store}"
        )

    warm_store = store_block(warm, warm_path)
    if warm_store.get("misses", 0) != 0:
        sys.exit(
            f"{warm_path}: warm run missed the store "
            f"{warm_store['misses']} time(s): {warm_store}"
        )
    if warm_store.get("corrupt", 0) != 0:
        sys.exit(f"{warm_path}: warm run hit corrupt entries: {warm_store}")
    if warm_store.get("loads", 0) <= 0:
        sys.exit(f"{warm_path}: warm run loaded nothing from disk: {warm_store}")

    print(
        f"warm cache ok: manifests identical modulo host_* keys; cold wrote "
        f"{cold_store['writes']} entries, warm loaded {warm_store['loads']} "
        "with zero misses"
    )


if __name__ == "__main__":
    main()
